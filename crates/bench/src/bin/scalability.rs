//! §4.2 scalability statistics, per solver strategy:
//!
//! * constraint evaluations per constraint (paper: ≈ 2.12 worklist pops
//!   over SPEC + test-suite; the SCC strategy's analogue is ≤ that);
//! * solve time vs number of constraints (paper: R² = 0.988);
//! * the LT-set size distribution (paper: > 95% of sets have ≤ 2
//!   elements);
//! * worklist vs SCC wall-clock totals — the check that the engine's
//!   default path ([`SolverKind::Scc`]) is no slower than the baseline;
//! * the interprocedural summary layer over the call-heavy family —
//!   precision gained (`Contextuality::Summaries` vs `Intra` no-alias
//!   counts), summary facts/solves, and build-time overhead.
//!
//! Besides the human-readable table, the run emits machine-readable
//! `BENCH_scalability.json` in the working directory so CI can track the
//! performance trajectory across commits: the `gate` binary compares it
//! against the committed `BENCH_baseline.json` and fails on regressions.
//! The JSON includes `calibration_us` — the solve time of one fixed
//! reference system — so the gate can compare times across machines of
//! different speeds (tracked metric = time / calibration).

use sraa_bench::{r_squared, suite_n, Prepared};
use sraa_core::{EngineConfig, SolverKind};
use std::fmt::Write as _;
use std::time::Instant;

struct SolverTotals {
    kind: SolverKind,
    total_us: f64,
    total_evals: u64,
    xs: Vec<f64>, // constraints
    ys: Vec<f64>, // best-of-three solve time (µs)
}

fn main() {
    let mut ws = sraa_synth::test_suite(suite_n());
    ws.extend(sraa_synth::spec_all());

    let mut total_constraints = 0u64;
    let mut size_hist: std::collections::BTreeMap<usize, usize> = Default::default();
    let mut totals: Vec<SolverTotals> = SolverKind::ALL
        .into_iter()
        .map(|kind| SolverTotals {
            kind,
            total_us: 0.0,
            total_evals: 0,
            xs: Vec::new(),
            ys: Vec::new(),
        })
        .collect();

    for w in &ws {
        // The paper's §4.2 question is specifically about *constraint
        // solving*: prepare the system outside the timer, then time each
        // strategy alone, through the engine's `FixpointSolver` objects.
        let mut m = sraa_minic::compile(&w.source).expect("workloads compile");
        let (ranges, _) = sraa_essa::transform_module(&mut m);
        let sys = sraa_core::generate(&m, &ranges, Default::default());
        total_constraints += sys.constraints.len() as u64;

        for t in &mut totals {
            let solver = t.kind.solver();
            // Best of three runs to suppress timer noise on tiny systems.
            let mut dt = f64::INFINITY;
            let mut solution = None;
            for _ in 0..3 {
                let t0 = Instant::now();
                let sol = solver.solve(&sys.constraints, sys.num_vars);
                dt = dt.min(t0.elapsed().as_secs_f64() * 1e6);
                solution = Some(sol);
            }
            let solution = solution.expect("ran at least once");
            t.total_us += dt;
            t.total_evals += solution.stats.pops;
            t.xs.push(solution.stats.constraints as f64);
            t.ys.push(dt);
            if t.kind == SolverKind::Scc {
                for (sz, n) in solution.size_histogram() {
                    *size_hist.entry(sz).or_default() += n;
                }
            }
        }
    }

    println!("benchmarks analysed      : {}", ws.len());
    println!("total constraints        : {total_constraints}");
    for t in &totals {
        println!(
            "{:<9} evals/constraint : {:.2}   total {:.0}µs   R²(time, #constraints) {:.4}",
            t.kind.as_str(),
            t.total_evals as f64 / total_constraints.max(1) as f64,
            t.total_us,
            r_squared(&t.xs, &t.ys),
        );
    }
    println!("(paper: 2.12 pops/constraint, R² = 0.988 for the worklist)");

    let worklist = &totals[0];
    let scc = &totals[1];
    assert_eq!((worklist.kind, scc.kind), (SolverKind::Worklist, SolverKind::Scc));
    println!(
        "scc vs worklist          : {:.2}x wall-clock, {:.2}x evals (engine default: scc)",
        worklist.total_us / scc.total_us.max(1e-9),
        worklist.total_evals as f64 / scc.total_evals.max(1) as f64
    );

    let total_vars: usize = size_hist.values().sum();
    let small: usize = size_hist.iter().filter(|(s, _)| **s <= 2).map(|(_, n)| n).sum();
    let small_pct = small as f64 / total_vars.max(1) as f64 * 100.0;
    println!("LT sets with ≤ 2 elements: {small_pct:.1}%  (paper: >95%)");
    println!();
    println!("LT set size histogram (size: count):");
    for (sz, n) in size_hist.iter().take(12) {
        println!("  {sz:>3}: {n}");
    }

    let inter = interproc_stats();
    println!();
    println!("interprocedural summaries (call-heavy suite, {} workloads):", inter.workloads);
    println!(
        "  LT no-alias intra → summaries: {} → {}  ({:+})",
        inter.intra_no_alias,
        inter.summaries_no_alias,
        inter.summaries_no_alias as i64 - inter.intra_no_alias as i64
    );
    println!(
        "  {} summary fact(s), {} SCC(s) ({} recursive), {} solve(s)",
        inter.facts, inter.sccs, inter.recursive_sccs, inter.solves
    );
    println!(
        "  engine build intra {:.0}µs, summaries {:.0}µs ({:.2}x)",
        inter.intra_build_us,
        inter.summaries_build_us,
        inter.summaries_build_us / inter.intra_build_us.max(1e-9)
    );

    let calibration_us = calibrate();
    let json = render_json(
        &ws.len(),
        total_constraints,
        &totals,
        small_pct,
        &size_hist,
        &inter,
        calibration_us,
    );
    let path = "BENCH_scalability.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncannot write {path}: {e}"),
    }
}

/// Interprocedural metrics over the call-heavy family: the precision the
/// summary layer adds (deterministic) and what it costs (wall clock).
struct InterprocStats {
    workloads: usize,
    intra_no_alias: u64,
    summaries_no_alias: u64,
    facts: usize,
    sccs: usize,
    recursive_sccs: usize,
    solves: u64,
    intra_build_us: f64,
    summaries_build_us: f64,
}

fn interproc_stats() -> InterprocStats {
    let calls = sraa_synth::call_suite(suite_n().min(24));
    let mut out = InterprocStats {
        workloads: calls.len(),
        intra_no_alias: 0,
        summaries_no_alias: 0,
        facts: 0,
        sccs: 0,
        recursive_sccs: 0,
        solves: 0,
        intra_build_us: 0.0,
        summaries_build_us: 0.0,
    };
    for w in &calls {
        let t0 = Instant::now();
        let intra = Prepared::new(w);
        out.intra_build_us += t0.elapsed().as_secs_f64() * 1e6;
        let t0 = Instant::now();
        let inter = Prepared::with_engine_config(w, EngineConfig::default().with_summaries());
        out.summaries_build_us += t0.elapsed().as_secs_f64() * 1e6;

        out.intra_no_alias += intra.eval(&[&intra.lt])[0].no_alias;
        out.summaries_no_alias += inter.eval(&[&inter.lt])[0].no_alias;
        let sums = inter.lt.engine().summaries().expect("summaries mode");
        out.facts += sums.facts();
        out.sccs += sums.stats.sccs;
        out.recursive_sccs += sums.stats.recursive_sccs;
        out.solves += sums.stats.solves;
    }
    out
}

/// Solve time of one fixed reference system (best of five) — a proxy for
/// machine speed that lets the gate normalise wall-clock metrics across
/// hosts: `total_us / calibration_us` is comparable between a laptop
/// baseline and a CI runner.
fn calibrate() -> f64 {
    let w = sraa_synth::csmith_generate(sraa_synth::CsmithConfig {
        seed: 42,
        max_ptr_depth: 3,
        num_stmts: 400,
        helpers: 0,
    });
    let mut m = sraa_minic::compile(&w.source).expect("calibration workload compiles");
    let (ranges, _) = sraa_essa::transform_module(&mut m);
    let sys = sraa_core::generate(&m, &ranges, Default::default());
    let solver = SolverKind::Scc.solver();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        let sol = solver.solve(&sys.constraints, sys.num_vars);
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(sol);
    }
    best
}

/// Hand-rolled JSON — the workspace is offline and the numbers are flat.
fn render_json(
    workloads: &usize,
    total_constraints: u64,
    totals: &[SolverTotals],
    small_pct: f64,
    size_hist: &std::collections::BTreeMap<usize, usize>,
    inter: &InterprocStats,
    calibration_us: f64,
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"workloads\": {workloads},");
    let _ = writeln!(s, "  \"total_constraints\": {total_constraints},");
    let _ = writeln!(s, "  \"calibration_us\": {calibration_us:.1},");
    s.push_str("  \"interproc\": {\n");
    let _ = writeln!(s, "    \"workloads\": {},", inter.workloads);
    let _ = writeln!(s, "    \"intra_no_alias\": {},", inter.intra_no_alias);
    let _ = writeln!(s, "    \"summaries_no_alias\": {},", inter.summaries_no_alias);
    let _ = writeln!(s, "    \"facts\": {},", inter.facts);
    let _ = writeln!(s, "    \"sccs\": {},", inter.sccs);
    let _ = writeln!(s, "    \"recursive_sccs\": {},", inter.recursive_sccs);
    let _ = writeln!(s, "    \"solves\": {},", inter.solves);
    let _ = writeln!(s, "    \"intra_build_us\": {:.1},", inter.intra_build_us);
    let _ = writeln!(s, "    \"summaries_build_us\": {:.1}", inter.summaries_build_us);
    s.push_str("  },\n");
    s.push_str("  \"solvers\": [\n");
    for (i, t) in totals.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"total_us\": {:.1}, \"total_evals\": {}, \
             \"evals_per_constraint\": {:.4}, \"r2_time_vs_constraints\": {:.4}}}{}",
            t.kind.as_str(),
            t.total_us,
            t.total_evals,
            t.total_evals as f64 / total_constraints.max(1) as f64,
            r_squared(&t.xs, &t.ys),
            if i + 1 < totals.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"scc_speedup_over_worklist\": {:.4},",
        totals[0].total_us / totals[1].total_us.max(1e-9)
    );
    let _ = writeln!(s, "  \"default_solver\": \"{}\",", SolverKind::default().as_str());
    let _ = writeln!(s, "  \"lt_sets_le2_pct\": {small_pct:.2},");
    s.push_str("  \"size_histogram\": {");
    let mut first = true;
    for (sz, n) in size_hist {
        if !first {
            s.push_str(", ");
        }
        first = false;
        let _ = write!(s, "\"{sz}\": {n}");
    }
    s.push_str("}\n}\n");
    s
}
