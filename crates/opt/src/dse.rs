//! Dead-store elimination, parameterised by an alias oracle.
//!
//! A store is dead when the stored value can never be observed: a later
//! store *must-aliasing* the same address overwrites it before any
//! *may-aliasing* read. The pass walks each block backwards keeping the
//! set of "pending overwrites" — addresses that will certainly be
//! re-stored before anything that might read them runs:
//!
//! * a later `Store q` adds `q` to the pending set;
//! * a `Load p` evicts every pending `q` unless the oracle proves
//!   `p`/`q` disjoint — this is where extra `NoAlias` answers remove
//!   more stores;
//! * a `Call` evicts everything (the callee may read any memory);
//! * an earlier `Store p` with a pending **must**-alias is dead.
//!
//! Scope is a single block: block exits conservatively assume memory is
//! read afterwards, so the pending set starts empty. Like the
//! redundant-load pass, this is the simplest sound client that turns
//! disambiguation precision into removed instructions.

use crate::OptStats;
use sraa_alias::{AliasAnalysis, AliasResult};
use sraa_ir::{FuncId, InstKind, Module, Value};

/// Runs dead-store elimination over every function, driven by `aa`.
/// Returns the number of stores removed.
pub fn eliminate_dead_stores(module: &mut Module, aa: &dyn AliasAnalysis) -> OptStats {
    let fids: Vec<FuncId> = module.functions().map(|(id, _)| id).collect();
    let mut stats = OptStats::default();
    for fid in fids {
        stats += eliminate_in_function(module, fid, aa);
    }
    stats
}

fn eliminate_in_function(module: &mut Module, fid: FuncId, aa: &dyn AliasAnalysis) -> OptStats {
    let func = module.function(fid);
    let mut dead: Vec<Value> = Vec::new();

    for b in func.block_ids() {
        let insts: Vec<Value> = func.block_insts(b).map(|(v, _)| v).collect();
        // Addresses certainly overwritten before any possible read.
        let mut pending: Vec<Value> = Vec::new();
        for &v in insts.iter().rev() {
            match &func.inst(v).kind {
                InstKind::Store { ptr, .. } => {
                    if pending.iter().any(|&q| must_alias(module, fid, aa, q, *ptr)) {
                        dead.push(v);
                        // The overwriting store still covers this address
                        // for anything even earlier.
                    } else {
                        pending.push(*ptr);
                    }
                }
                InstKind::Load { ptr } => {
                    pending.retain(|&q| aa.alias(module, fid, q, *ptr) == AliasResult::NoAlias);
                }
                InstKind::Call { .. } => pending.clear(),
                _ => {}
            }
        }
    }

    let n = dead.len();
    let func = module.function_mut(fid);
    for v in dead {
        func.detach_inst(v);
    }
    OptStats { stores_eliminated: n, ..OptStats::default() }
}

/// `MustAlias` from the oracle, or structural gep equality (same
/// stripped base and offset) — see `load_elim::must_alias`.
fn must_alias(module: &Module, fid: FuncId, aa: &dyn AliasAnalysis, p1: Value, p2: Value) -> bool {
    if aa.alias(module, fid, p1, p2) == AliasResult::MustAlias {
        return true;
    }
    let func = module.function(fid);
    let strip = |mut v: Value| loop {
        match &func.inst(v).kind {
            InstKind::Copy { src, .. } => v = *src,
            _ => return v,
        }
    };
    let (s1, s2) = (strip(p1), strip(p2));
    if s1 == s2 {
        return true;
    }
    match (&func.inst(s1).kind, &func.inst(s2).kind) {
        (InstKind::Gep { base: b1, offset: o1 }, InstKind::Gep { base: b2, offset: o2 }) => {
            strip(*b1) == strip(*b2) && strip(*o1) == strip(*o2)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraa_alias::BasicAliasAnalysis;
    use sraa_ir::Interpreter;

    fn run_main(module: &Module) -> Option<i64> {
        Interpreter::new(module).run("main", &[]).expect("execution").result
    }

    fn count_stores(module: &Module) -> usize {
        module
            .functions()
            .map(|(_, f)| {
                f.block_ids()
                    .flat_map(|b| f.block_insts(b))
                    .filter(|(_, d)| matches!(d.kind, InstKind::Store { .. }))
                    .count()
            })
            .sum()
    }

    #[test]
    fn overwritten_store_is_removed() {
        let mut m = sraa_minic::compile(
            r#"
            int main() {
                int a[1];
                a[0] = 1;
                a[0] = 2;
                return a[0];
            }
            "#,
        )
        .unwrap();
        let ba = BasicAliasAnalysis::new(&m);
        let stats = eliminate_dead_stores(&mut m, &ba);
        assert_eq!(stats.stores_eliminated, 1);
        sraa_ir::verify(&m).unwrap();
        assert_eq!(run_main(&m), Some(2));
    }

    #[test]
    fn intervening_aliasing_load_keeps_the_store() {
        let mut m = sraa_minic::compile(
            r#"
            int main() {
                int a[1];
                a[0] = 1;
                int x = a[0];
                a[0] = 2;
                return a[0] + x;
            }
            "#,
        )
        .unwrap();
        let ba = BasicAliasAnalysis::new(&m);
        let stats = eliminate_dead_stores(&mut m, &ba);
        assert_eq!(stats.stores_eliminated, 0);
        assert_eq!(run_main(&m), Some(3));
    }

    #[test]
    fn disjoint_load_does_not_keep_the_store() {
        // The read of b[0] cannot observe a[0] (distinct allocations):
        // the first a-store is still dead.
        let mut m = sraa_minic::compile(
            r#"
            int main() {
                int a[1];
                int b[1];
                b[0] = 9;
                a[0] = 1;
                int x = b[0];
                a[0] = 2;
                return a[0] + x;
            }
            "#,
        )
        .unwrap();
        let before = count_stores(&m);
        let ba = BasicAliasAnalysis::new(&m);
        let stats = eliminate_dead_stores(&mut m, &ba);
        assert_eq!(stats.stores_eliminated, 1, "only the dead a-store goes");
        assert_eq!(count_stores(&m), before - 1);
        assert_eq!(run_main(&m), Some(11));
    }

    #[test]
    fn call_between_stores_keeps_both() {
        let mut m = sraa_minic::compile(
            r#"
            int g(int* p) { return *p; }
            int main() {
                int a[1];
                a[0] = 1;
                int x = g(a);
                a[0] = 2;
                return a[0] + x;
            }
            "#,
        )
        .unwrap();
        let ba = BasicAliasAnalysis::new(&m);
        let stats = eliminate_dead_stores(&mut m, &ba);
        assert_eq!(stats.stores_eliminated, 0);
        assert_eq!(run_main(&m), Some(3));
    }

    #[test]
    fn store_in_other_block_is_not_touched() {
        // DSE scope is one block: the early store lives in the entry
        // block, the overwrite in the loop — must both survive.
        let mut m = sraa_minic::compile(
            r#"
            int main() {
                int a[1];
                a[0] = 7;
                for (int i = 0; i < 1; i++) { a[0] = 9; }
                return a[0];
            }
            "#,
        )
        .unwrap();
        let before = count_stores(&m);
        let ba = BasicAliasAnalysis::new(&m);
        let stats = eliminate_dead_stores(&mut m, &ba);
        assert_eq!(stats.stores_eliminated, 0);
        assert_eq!(count_stores(&m), before);
        assert_eq!(run_main(&m), Some(9));
    }
}
