//! Dead code elimination.
//!
//! Detaches value-producing instructions with no remaining uses and no
//! side effects. Loads are considered removable (as in LLVM, absent
//! volatility), allocations too; stores, calls and terminators are always
//! kept. Runs to a fixpoint (removing one instruction can orphan its
//! operands).

use crate::defuse::DefUse;
use crate::function::Function;
use crate::ids::Value;
use crate::inst::InstKind;

/// Whether an unused instruction may be deleted.
fn removable(kind: &InstKind) -> bool {
    match kind {
        InstKind::Store { .. }
        | InstKind::Call { .. }
        | InstKind::Br { .. }
        | InstKind::Jump(_)
        | InstKind::Ret(_) => false,
        // Params stay: they define the ABI surface of the function.
        InstKind::Param(_) => false,
        _ => true,
    }
}

/// Removes dead instructions from `func`; returns how many were detached.
pub fn eliminate_dead_code(func: &mut Function) -> usize {
    let mut total = 0usize;
    loop {
        let du = DefUse::compute(func);
        let dead: Vec<Value> = func
            .block_ids()
            .flat_map(|b| func.block(b).insts.clone())
            .filter(|&v| {
                let data = func.inst(v);
                data.has_result() && du.is_dead(v) && removable(&data.kind)
            })
            .collect();
        if dead.is_empty() {
            break;
        }
        for v in dead {
            func.detach_inst(v);
            total += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;
    use crate::types::Type;
    use crate::verifier::verify_function;

    #[test]
    fn removes_unused_chains_transitively() {
        let mut f = Function::new("t", vec![("x", Type::Int)], Some(Type::Int));
        let mut b = FunctionBuilder::new(&mut f);
        let x = b.param(0);
        let a = b.binary(BinOp::Add, x, x); // used only by `m`
        let m = b.binary(BinOp::Mul, a, a); // unused
        let _ = m;
        b.ret(Some(x));
        b.finish();
        let n = eliminate_dead_code(&mut f);
        assert_eq!(n, 2, "m first, then a becomes dead");
        verify_function(&f, None).unwrap();
        assert!(f.inst(a).block.is_none());
        assert!(f.inst(m).block.is_none());
    }
}
