//! Redundant-load elimination (store-to-load and load-to-load
//! forwarding), parameterised by an alias oracle.
//!
//! The pass keeps a set of *available memory facts* — "address `p`
//! currently holds SSA value `v`" — established by stores and loads. A
//! later load whose address **must** alias an available fact is replaced
//! by the remembered value; a store whose address **may** alias a fact
//! kills it. The alias oracle therefore controls both edges of the
//! trade-off:
//!
//! * more `MustAlias` answers ⇒ more loads forwarded;
//! * more `NoAlias` answers ⇒ fewer facts killed by unrelated stores —
//!   this is where the paper's strict-inequality analysis pays off
//!   (`v[i] = …` cannot kill the fact for `v[j]` when `i < j`).
//!
//! Facts flow through *single-predecessor* chains only (extended basic
//! blocks): a merge point may be reached around a killing store, and a
//! loop header may be re-entered after one, so both start empty. This is
//! deliberately the simplest sound scope — the experiment compares
//! oracles, not scheduling.

use crate::OptStats;
use sraa_alias::{AliasAnalysis, AliasResult};
use sraa_ir::{Cfg, FuncId, InstKind, Module, Value};

/// An available fact: the memory at `ptr` holds `value`.
#[derive(Clone, Copy, Debug)]
struct Avail {
    ptr: Value,
    value: Value,
}

/// Runs redundant-load elimination over every function, driven by `aa`.
/// Returns the number of loads removed.
///
/// The oracle is queried on the module *as given*; run the pass after
/// the oracle's constructor (which, for the strict-inequality analysis,
/// converts the module to e-SSA form).
pub fn eliminate_redundant_loads(module: &mut Module, aa: &dyn AliasAnalysis) -> OptStats {
    let fids: Vec<FuncId> = module.functions().map(|(id, _)| id).collect();
    let mut stats = OptStats::default();
    for fid in fids {
        stats += eliminate_in_function(module, fid, aa);
    }
    stats
}

fn eliminate_in_function(module: &mut Module, fid: FuncId, aa: &dyn AliasAnalysis) -> OptStats {
    // Phase 1 (read-only): walk blocks in reverse postorder, carry facts
    // across single-predecessor edges, and record the loads to forward.
    let func = module.function(fid);
    let cfg = Cfg::compute(func);
    let rpo = cfg.reverse_postorder();

    let mut out_facts: Vec<Option<Vec<Avail>>> = vec![None; func.num_blocks()];
    let mut replacements: Vec<(Value, Value)> = Vec::new();

    for &b in &rpo {
        let mut facts: Vec<Avail> = match cfg.preds(b) {
            [only] if *only != b => out_facts[only.index()].clone().unwrap_or_default(),
            _ => Vec::new(),
        };
        for (v, data) in func.block_insts(b) {
            match &data.kind {
                InstKind::Load { ptr } => {
                    if let Some(hit) =
                        facts.iter().find(|f| must_alias(module, fid, aa, f.ptr, *ptr))
                    {
                        replacements.push((v, hit.value));
                        // The fact stays; `v` is going away.
                    } else {
                        facts.push(Avail { ptr: *ptr, value: v });
                    }
                }
                InstKind::Store { ptr, value } => {
                    facts.retain(|f| aa.alias(module, fid, f.ptr, *ptr) == AliasResult::NoAlias);
                    facts.push(Avail { ptr: *ptr, value: *value });
                }
                // Calls may read or write anything reachable.
                InstKind::Call { .. } => facts.clear(),
                _ => {}
            }
        }
        out_facts[b.index()] = Some(facts);
    }

    // Phase 2 (mutation): rewrite uses, detach the forwarded loads.
    if replacements.is_empty() {
        return OptStats::default();
    }
    let map: std::collections::HashMap<Value, Value> = replacements.iter().copied().collect();
    let func = module.function_mut(fid);
    let values: Vec<Value> = func.value_ids().collect();
    for v in values {
        let data = func.inst_mut(v);
        data.kind.for_each_operand_mut(|op| {
            if let Some(&r) = map.get(op) {
                *op = r;
            }
        });
        data.kind.for_each_phi_operand_mut(|_, op| {
            if let Some(&r) = map.get(op) {
                *op = r;
            }
        });
    }
    for &(load, _) in &replacements {
        func.detach_inst(load);
    }
    OptStats { loads_eliminated: replacements.len(), ..OptStats::default() }
}

/// `MustAlias` from the oracle, or structural equality of gep addresses
/// (same stripped base, same offset value) — local value numbering that
/// any real compiler performs before memory optimisation.
fn must_alias(module: &Module, fid: FuncId, aa: &dyn AliasAnalysis, p1: Value, p2: Value) -> bool {
    if aa.alias(module, fid, p1, p2) == AliasResult::MustAlias {
        return true;
    }
    let func = module.function(fid);
    let strip = |mut v: Value| loop {
        match &func.inst(v).kind {
            InstKind::Copy { src, .. } => v = *src,
            _ => return v,
        }
    };
    let (s1, s2) = (strip(p1), strip(p2));
    if s1 == s2 {
        return true;
    }
    match (&func.inst(s1).kind, &func.inst(s2).kind) {
        (InstKind::Gep { base: b1, offset: o1 }, InstKind::Gep { base: b2, offset: o2 }) => {
            strip(*b1) == strip(*b2) && strip(*o1) == strip(*o2)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraa_alias::BasicAliasAnalysis;
    use sraa_ir::Interpreter;

    fn count_loads(module: &Module) -> usize {
        module
            .functions()
            .map(|(_, f)| {
                f.block_ids()
                    .flat_map(|b| f.block_insts(b))
                    .filter(|(_, d)| matches!(d.kind, InstKind::Load { .. }))
                    .count()
            })
            .sum()
    }

    fn run_main(module: &Module) -> Option<i64> {
        Interpreter::new(module).run("main", &[]).expect("execution").result
    }

    #[test]
    fn forwards_store_to_load_same_address() {
        let mut m = sraa_minic::compile(
            r#"
            int main() {
                int a[4];
                a[0] = 41;
                return a[0] + 1;
            }
            "#,
        )
        .unwrap();
        let before = run_main(&m);
        let ba = BasicAliasAnalysis::new(&m);
        let stats = eliminate_redundant_loads(&mut m, &ba);
        assert_eq!(stats.loads_eliminated, 1);
        sraa_ir::verify(&m).unwrap();
        assert_eq!(run_main(&m), before);
        assert_eq!(before, Some(42));
    }

    #[test]
    fn forwards_load_to_load() {
        let mut m = sraa_minic::compile(
            r#"
            int f(int* p) { return *p + *p; }
            int main() { int a[1]; a[0] = 21; return f(a); }
            "#,
        )
        .unwrap();
        let before = run_main(&m);
        let ba = BasicAliasAnalysis::new(&m);
        let stats = eliminate_redundant_loads(&mut m, &ba);
        assert_eq!(stats.loads_eliminated, 1, "second *p reuses the first");
        sraa_ir::verify(&m).unwrap();
        assert_eq!(run_main(&m), before);
    }

    #[test]
    fn aliasing_store_kills_the_fact() {
        // The store *q may alias *p under BA (both are parameters), so
        // the second load of *p must survive.
        let mut m = sraa_minic::compile(
            r#"
            int f(int* p, int* q) { int x = *p; *q = 7; return x + *p; }
            int main() { int a[1]; a[0] = 1; return f(a, a); }
            "#,
        )
        .unwrap();
        let before = run_main(&m);
        let loads = count_loads(&m);
        let ba = BasicAliasAnalysis::new(&m);
        let stats = eliminate_redundant_loads(&mut m, &ba);
        assert_eq!(stats.loads_eliminated, 0);
        assert_eq!(count_loads(&m), loads);
        assert_eq!(run_main(&m), before);
    }

    #[test]
    fn disjoint_allocations_do_not_kill() {
        // BA knows distinct allocation sites cannot alias: the store to
        // b[] keeps the fact for a[0] alive.
        let mut m = sraa_minic::compile(
            r#"
            int main() {
                int a[2];
                int b[2];
                a[0] = 5;
                b[0] = 9;
                return a[0];
            }
            "#,
        )
        .unwrap();
        let before = run_main(&m);
        let ba = BasicAliasAnalysis::new(&m);
        let stats = eliminate_redundant_loads(&mut m, &ba);
        assert_eq!(stats.loads_eliminated, 1, "b-store must not kill the a-fact");
        assert_eq!(run_main(&m), before);
    }

    #[test]
    fn call_kills_everything() {
        let mut m = sraa_minic::compile(
            r#"
            void touch(int* p) { *p = 3; }
            int main() {
                int a[1];
                a[0] = 1;
                touch(a);
                return a[0];
            }
            "#,
        )
        .unwrap();
        let ba = BasicAliasAnalysis::new(&m);
        let stats = eliminate_redundant_loads(&mut m, &ba);
        assert_eq!(stats.loads_eliminated, 0, "the call may write a[0]");
        assert_eq!(run_main(&m), Some(3));
    }

    #[test]
    fn facts_do_not_cross_merge_points() {
        // Both branches reach the final load; one of them stores to the
        // same slot. Facts must not flow through the merge.
        let mut m = sraa_minic::compile(
            r#"
            int f(int c) {
                int a[1];
                a[0] = 1;
                if (c) { a[0] = 2; }
                return a[0];
            }
            int main() { return f(1); }
            "#,
        )
        .unwrap();
        let ba = BasicAliasAnalysis::new(&m);
        let _ = eliminate_redundant_loads(&mut m, &ba);
        sraa_ir::verify(&m).unwrap();
        assert_eq!(run_main(&m), Some(2), "must observe the branch store");
    }

    #[test]
    fn structural_gep_equality_forwards() {
        // Two textual occurrences of v[i] produce two gep instructions;
        // the pass value-numbers them.
        let mut m = sraa_minic::compile(
            r#"
            int f(int* v, int i) { return v[i] + v[i]; }
            int main() { int a[4]; a[2] = 10; return f(a, 2); }
            "#,
        )
        .unwrap();
        let before = run_main(&m);
        let ba = BasicAliasAnalysis::new(&m);
        let stats = eliminate_redundant_loads(&mut m, &ba);
        assert_eq!(stats.loads_eliminated, 1);
        assert_eq!(run_main(&m), before);
    }
}
