//! The paper's applicability experiment in miniature (its §4.3): build
//! the Program Dependence Graph of one Csmith-like random program under
//! BA alone and under BA+LT, and report the memory-node counts. More
//! memory nodes = finer dependence information = more freedom for
//! instruction scheduling, value numbering and friends.
//!
//! Run with `cargo run --example pdg_nodes -- [seed] [ptr-depth]`.

use sraa::alias::{BasicAliasAnalysis, Combined, StrictInequalityAa};
use sraa::lt::GenConfig;
use sraa::pdg::DepGraph;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let depth: u8 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);

    let w = sraa::synth::csmith_generate(sraa::synth::CsmithConfig {
        seed,
        max_ptr_depth: depth,
        num_stmts: 80,
        helpers: 0,
    });
    println!("generated {} ({} bytes of MiniC)\n", w.name, w.source.len());

    let mut module = sraa::minic::compile(&w.source).expect("generated programs compile");
    // The PDG experiment enables the §3.6 range-offset criterion (see
    // DESIGN.md): Csmith indexing is constant-valued, which is exactly
    // what that criterion resolves.
    let lt = StrictInequalityAa::with_config(
        &mut module,
        GenConfig { range_offsets: true, ..Default::default() },
    );
    let ba = BasicAliasAnalysis::new(&module);
    let both =
        Combined::new(vec![Box::new(BasicAliasAnalysis::new(&module)), Box::new(lt.clone())]);

    let g_ba = DepGraph::build(&module, &ba);
    let g_both = DepGraph::build(&module, &both);

    println!("static memory accesses : {}", g_ba.static_accesses);
    println!("PDG nodes              : {}", g_ba.nodes.len());
    println!("PDG edges              : {}", g_ba.edges.len());
    println!("memory nodes, BA       : {}", g_ba.memory_nodes);
    println!("memory nodes, BA+LT    : {}", g_both.memory_nodes);
    println!(
        "\nBA+LT refines the dependence graph {:.2}x (the paper's Figure 12\nreports 6.23x over its 120-program Csmith lot).",
        g_both.memory_nodes as f64 / g_ba.memory_nodes.max(1) as f64
    );

    // The program also runs.
    let t = sraa::ir::Interpreter::new(&module).run("main", &[]).expect("no traps");
    println!("\nprogram executed: checksum {:?}, {} steps", t.result, t.steps);
}
