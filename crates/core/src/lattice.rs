//! Pluggable lattice storage — the `LatticeStore` abstraction both
//! fixpoint solvers propagate through.
//!
//! The solvers in [`crate::solver`] and [`crate::fast_solver`] decide
//! *scheduling* only (FIFO worklist vs SCC topological order). Everything
//! about how `LT` sets are *represented* lives here, behind one small
//! contract: a store holds the current set of every variable, re-evaluates
//! one constraint at a time (`LatticeStore::update`) and reports whether
//! the defined variable's set actually changed ([`ChangeResult`]), so a
//! solver re-enqueues successors only on observed change. Two backends
//! implement the contract:
//!
//! * `ArcStore` — the historical representation: one `Arc<[u32]>` per
//!   variable ([`LtSet`]). `Copy` constraints share allocations and
//!   solutions are cheap to clone, but every `Union` evaluation allocates
//!   a fresh slice, which dominates solve time on large systems.
//! * `DenseStore` — a flat CSR-style arena: all explicit sets live in
//!   one contiguous `Vec<u32>` addressed by per-variable `(offset, len)`.
//!   Because the lattice only descends (`new ⊆ old`, paper Theorem 3.7),
//!   a re-evaluation can almost always shrink a set *in place*; fresh
//!   arena space is appended only on a variable's first explicit write,
//!   and the dead words shrinks leave behind are compacted away
//!   mid-solve once they dominate the arena. The straight-line
//!   `Union`/`Inter` evaluations run over the vectorizable sorted-set
//!   kernels of `crate::setops` (block-skip intersection, run-copying
//!   merge union); inside large cyclic components the store switches to
//!   fixed-width bitset rows ([`sraa_ir::BitMatrix`]) over the
//!   component's candidate element universe, turning the hot evaluations
//!   into word-parallel operations. ⊤ stays symbolic in both backends.
//!
//! Both backends compute the identical greatest fixpoint with the
//! identical evaluation schedule — `stats.pops`, frozen-⊤ counts and all
//! printed output are byte-for-byte the same (differentially tested in
//! `tests/solvers.rs` and the proptests below); the backend is purely a
//! memory-layout/performance knob, selected by [`LatticeBackend`]
//! (`--lattice {auto,arc,dense}` on the CLI, `SRAA_LATTICE` in the
//! environment).

use crate::constraints::Constraint;
use crate::lt_set::{decreases, eval, LtSet};
use crate::setops::{intersect_in_place, union_merge};
use crate::solver::{Solution, SolveStats};
use sraa_ir::BitMatrix;
use std::collections::VecDeque;
use std::sync::OnceLock;

/// Outcome of re-evaluating one constraint: did the defined variable's
/// set change? Solvers re-enqueue dependents only on `Changed`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChangeResult {
    /// The set shrank (or left ⊤): successors must be revisited.
    Changed,
    /// The fixpoint for this constraint is locally stable.
    Unchanged,
}

impl ChangeResult {
    /// `true` for [`ChangeResult::Changed`].
    #[inline]
    pub fn changed(self) -> bool {
        matches!(self, ChangeResult::Changed)
    }
}

/// Which lattice storage the solvers use. A pure performance knob: both
/// backends produce identical solutions, statistics and printed output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LatticeBackend {
    /// Measured default: [`LatticeBackend::Dense`] for systems of at
    /// least [`dense_min_constraints`] constraints, [`LatticeBackend::Arc`]
    /// below (tiny systems fit in cache either way and the shared-`Arc`
    /// solutions are cheaper to clone). The crossover is self-calibrated
    /// once per process from micro-probes of both backends; pin it with
    /// `SRAA_DENSE_MIN=N`, or bypass the heuristic entirely via the
    /// `SRAA_LATTICE={arc,dense}` environment variable.
    #[default]
    Auto,
    /// Shared `Arc<[u32]>` slices, one per variable.
    Arc,
    /// Flat CSR arena + bitset rows inside large cyclic components.
    Dense,
}

/// Fallback `Auto` crossover when calibration is unavailable or
/// inconclusive.
///
/// Measured on the `scalability` suite (best-of-3 per size, see
/// `BENCH_baseline.json`): the dense arena wins clearly from a few
/// hundred constraints up (no per-`Union` allocation), while below that
/// the two are within noise of each other and the shared-slice solution
/// clones cheaper. 256 sits comfortably inside the indifference band.
/// The live threshold is [`dense_min_constraints`], which measures the
/// actual arc/dense crossover on this machine.
pub const DENSE_MIN_CONSTRAINTS: usize = 256;

/// The constraint count from which `Auto` picks the `Dense` backend,
/// self-calibrated once per process.
///
/// Resolution order:
/// 1. `SRAA_DENSE_MIN=N` in the environment pins the threshold exactly
///    (CI's perf gate sets `256` so allocation-count gate rows stay
///    machine-independent).
/// 2. Otherwise a one-shot micro-calibration solves the same synthetic
///    chain-with-φs system at a ladder of sizes with *both* explicit
///    backends (explicit backends never consult this threshold, so the
///    probe cannot re-enter the `OnceLock`) and picks the smallest probe
///    size from which `Dense` never loses again (`pick_crossover`).
/// 3. If `Arc` wins every probe, the measured crossover is above the
///    ladder and the conservative [`DENSE_MIN_CONSTRAINTS`] fallback is
///    used.
pub fn dense_min_constraints() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        if let Some(n) =
            std::env::var("SRAA_DENSE_MIN").ok().and_then(|s| s.trim().parse::<usize>().ok())
        {
            return n;
        }
        calibrate_crossover().unwrap_or(DENSE_MIN_CONSTRAINTS)
    })
}

/// Probe ladder for [`calibrate_crossover`]: covers the historical
/// indifference band on both sides.
const CALIBRATION_PROBES: [usize; 5] = [64, 128, 256, 512, 1024];

/// Times both explicit backends on a synthetic system per probe size and
/// picks the crossover. Total cost is a few hundred microseconds, paid at
/// most once per process (and only when `Auto` actually resolves without
/// an environment pin).
fn calibrate_crossover() -> Option<usize> {
    let mut rows = Vec::with_capacity(CALIBRATION_PROBES.len());
    for &size in &CALIBRATION_PROBES {
        let (cs, n) = calibration_system(size);
        let arc_ns = best_of(3, || {
            crate::fast_solver::solve_fast_with(&cs, n, LatticeBackend::Arc);
        });
        let dense_ns = best_of(3, || {
            crate::fast_solver::solve_fast_with(&cs, n, LatticeBackend::Dense);
        });
        rows.push((size, arc_ns, dense_ns));
    }
    pick_crossover(&rows)
}

/// The probe workload: `Union` chains re-grounded every 64 constraints
/// (keeping sets bounded, as e-SSA live ranges are) with a φ-style
/// `Inter` every 8th constraint — the shape Figure-7 generation produces
/// for straight-line code with joins.
fn calibration_system(num_constraints: usize) -> (Vec<Constraint>, usize) {
    use crate::var_index::VarId;
    let mut cs = Vec::with_capacity(num_constraints);
    cs.push(Constraint::Init { x: VarId::new(0) });
    for i in 1..num_constraints as u32 {
        cs.push(if i % 64 == 0 {
            Constraint::Init { x: VarId::new(i) }
        } else if i % 8 == 0 && i % 64 >= 2 {
            Constraint::Inter {
                x: VarId::new(i),
                sources: vec![VarId::new(i - 1), VarId::new(i - 2)],
            }
        } else {
            Constraint::Union {
                x: VarId::new(i),
                elems: vec![VarId::new(i - 1)],
                sources: vec![VarId::new(i - 1)],
            }
        });
    }
    (cs, num_constraints)
}

fn best_of(reps: usize, mut f: impl FnMut()) -> u64 {
    (0..reps)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .min()
        .unwrap_or(u64::MAX)
}

/// Pure crossover selection over `(size, arc_ns, dense_ns)` probe rows
/// (sorted ascending by size): the smallest probed size from which
/// `Dense` never loses again. `None` when `Arc` wins the largest probe —
/// the crossover, if any, lies beyond the ladder.
pub(crate) fn pick_crossover(probes: &[(usize, u64, u64)]) -> Option<usize> {
    let mut ans = None;
    for &(size, arc_ns, dense_ns) in probes.iter().rev() {
        if dense_ns <= arc_ns {
            ans = Some(size);
        } else {
            break;
        }
    }
    ans
}

/// The backend `Auto` resolved to, after consulting `SRAA_LATTICE` and
/// the size heuristic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ResolvedBackend {
    Arc,
    Dense,
}

fn env_override() -> Option<LatticeBackend> {
    // Cached: `resolve` runs once per solve and summary computation runs
    // one solve per SCC of the call graph.
    static CACHE: OnceLock<Option<LatticeBackend>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("SRAA_LATTICE").ok().and_then(|s| match LatticeBackend::parse(&s) {
            Some(LatticeBackend::Auto) | None => None, // unknown values fall back to the heuristic
            some => some,
        })
    })
}

impl LatticeBackend {
    /// Every backend, in presentation order.
    pub const ALL: [LatticeBackend; 3] =
        [LatticeBackend::Auto, LatticeBackend::Arc, LatticeBackend::Dense];

    /// The two concrete representations (what differential tests iterate).
    pub const CONCRETE: [LatticeBackend; 2] = [LatticeBackend::Arc, LatticeBackend::Dense];

    /// Parses a CLI-style name (`"auto"` / `"arc"` / `"dense"`).
    pub fn parse(s: &str) -> Option<LatticeBackend> {
        match s {
            "auto" => Some(LatticeBackend::Auto),
            "arc" => Some(LatticeBackend::Arc),
            "dense" => Some(LatticeBackend::Dense),
            _ => None,
        }
    }

    /// The CLI-style name.
    pub fn as_str(self) -> &'static str {
        match self {
            LatticeBackend::Auto => "auto",
            LatticeBackend::Arc => "arc",
            LatticeBackend::Dense => "dense",
        }
    }

    /// Resolves `Auto` against the environment override and the measured
    /// size threshold.
    pub(crate) fn resolve(self, num_constraints: usize) -> ResolvedBackend {
        match self {
            LatticeBackend::Arc => ResolvedBackend::Arc,
            LatticeBackend::Dense => ResolvedBackend::Dense,
            LatticeBackend::Auto => match env_override() {
                Some(LatticeBackend::Arc) => ResolvedBackend::Arc,
                Some(LatticeBackend::Dense) => ResolvedBackend::Dense,
                _ if num_constraints >= dense_min_constraints() => ResolvedBackend::Dense,
                _ => ResolvedBackend::Arc,
            },
        }
    }
}

impl std::fmt::Display for LatticeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Storage of the per-variable `LT` sets during a solve. Implementations
/// own the representation; solvers own the schedule.
pub(crate) trait LatticeStore {
    /// Re-evaluates `c`'s right-hand side over the current sets and
    /// stores the result for `c.defined()`, reporting whether it changed.
    fn update(&mut self, c: &Constraint) -> ChangeResult;

    /// Chaotic iteration over one cyclic component, to the local greatest
    /// fixpoint. The default is the representation-agnostic worklist
    /// ([`iterate_component`]); backends may substitute an equivalent
    /// accelerated evaluation, but must preserve the exact schedule (the
    /// `pops` counter is part of the printed output).
    fn solve_component(&mut self, cx: &ComponentCtx<'_>, stats: &mut SolveStats) {
        iterate_component(self, cx, stats);
    }

    /// Final step: demote residual ⊤ to ∅ (the paper's freeze) and
    /// package the [`Solution`].
    fn freeze(self, stats: SolveStats) -> Solution
    where
        Self: Sized;
}

/// One cyclic component of the constraint dependency graph, with its
/// member-local dependents in CSR form. Built once per component by the
/// SCC solver and interpreted by whichever store solves it.
pub(crate) struct ComponentCtx<'a> {
    /// The full constraint system.
    pub constraints: &'a [Constraint],
    /// Member constraint indices, in Tarjan emission order.
    pub comp: &'a [u32],
    dep_offsets: Vec<u32>,
    dep_edges: Vec<u32>,
}

impl<'a> ComponentCtx<'a> {
    /// Builds the member-local dependents CSR: for the member at local
    /// index `l`, `dependents(l)` lists the local indices of members that
    /// read the variable `l` defines, in member-traversal order (the same
    /// order a per-member `Vec` push would produce, so the propagation
    /// schedule is reproducible).
    pub(crate) fn build(constraints: &'a [Constraint], comp: &'a [u32], defining: &[u32]) -> Self {
        let k = comp.len();
        let mut order: Vec<(u32, u32)> =
            comp.iter().enumerate().map(|(l, &ci)| (ci, l as u32)).collect();
        order.sort_unstable();
        let local_of = |ci: u32| -> Option<u32> {
            order.binary_search_by_key(&ci, |&(c, _)| c).ok().map(|p| order[p].1)
        };

        let mut dep_offsets = vec![0u32; k + 1];
        for &ci in comp {
            for r in constraints[ci as usize].reads() {
                let d = defining[r.index()];
                if d != u32::MAX {
                    if let Some(ld) = local_of(d) {
                        dep_offsets[ld as usize + 1] += 1;
                    }
                }
            }
        }
        for i in 0..k {
            dep_offsets[i + 1] += dep_offsets[i];
        }
        let mut cursor: Vec<u32> = dep_offsets[..k].to_vec();
        let mut dep_edges = vec![0u32; dep_offsets[k] as usize];
        for (l, &ci) in comp.iter().enumerate() {
            for r in constraints[ci as usize].reads() {
                let d = defining[r.index()];
                if d != u32::MAX {
                    if let Some(ld) = local_of(d) {
                        dep_edges[cursor[ld as usize] as usize] = l as u32;
                        cursor[ld as usize] += 1;
                    }
                }
            }
        }
        Self { constraints, comp, dep_offsets, dep_edges }
    }

    /// Local indices of the members reading the variable member `l`
    /// defines.
    #[inline]
    fn dependents(&self, l: usize) -> &[u32] {
        &self.dep_edges[self.dep_offsets[l] as usize..self.dep_offsets[l + 1] as usize]
    }
}

/// The representation-agnostic component iteration: a FIFO worklist over
/// local member indices, seeded in emission order, re-enqueueing only the
/// dependents of constraints whose set changed. Index-based scratch
/// throughout — no hashing on the solver's hottest path.
pub(crate) fn iterate_component<S: LatticeStore + ?Sized>(
    store: &mut S,
    cx: &ComponentCtx<'_>,
    stats: &mut SolveStats,
) {
    let k = cx.comp.len();
    let mut worklist: VecDeque<u32> = (0..k as u32).collect();
    let mut on_list = vec![true; k];
    while let Some(l) = worklist.pop_front() {
        on_list[l as usize] = false;
        stats.pops += 1;
        if store.update(&cx.constraints[cx.comp[l as usize] as usize]).changed() {
            for &d in cx.dependents(l as usize) {
                if !on_list[d as usize] {
                    on_list[d as usize] = true;
                    worklist.push_back(d);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Arc backend
// ---------------------------------------------------------------------------

/// The shared-slice backend: the historical `Vec<LtSet>` with the
/// [`eval`] transfer functions of [`crate::lt_set`].
pub(crate) struct ArcStore {
    sets: Vec<LtSet>,
}

impl ArcStore {
    pub(crate) fn new(num_vars: usize) -> Self {
        Self { sets: vec![LtSet::Top; num_vars] }
    }
}

impl LatticeStore for ArcStore {
    fn update(&mut self, c: &Constraint) -> ChangeResult {
        let x = c.defined().index();
        let new = eval(c, &self.sets);
        if new != self.sets[x] {
            debug_assert!(
                decreases(&self.sets[x], &new),
                "LT(v{x}) must only shrink: {:?} -> {new:?}",
                self.sets[x]
            );
            self.sets[x] = new;
            ChangeResult::Changed
        } else {
            ChangeResult::Unchanged
        }
    }

    fn freeze(self, stats: SolveStats) -> Solution {
        Solution::freeze(self.sets, stats)
    }
}

// ---------------------------------------------------------------------------
// Dense backend
// ---------------------------------------------------------------------------

/// Sentinel offset marking a variable still at symbolic ⊤.
const TOP_OFF: u32 = u32::MAX;

/// Inside a cyclic component of at least this many constraints the dense
/// store evaluates over bitset rows instead of sorted slices. Components
/// below the threshold are too small to amortise building the element
/// universe and the row matrices.
const BITSET_MIN_MEMBERS: usize = 16;

/// Upper bound on `members × universe` bits for the bitset path; above it
/// (degenerate, enormous components) the generic slice iteration is used
/// so memory stays proportional to the solution.
const BITSET_BIT_BUDGET: usize = 1 << 25;

/// Dead arena words below this count never trigger [`DenseStore::compact`]:
/// small solves finish before fragmentation can matter and the sweep
/// would cost more than the locality it buys.
const COMPACT_MIN_GARBAGE: usize = 4096;

/// The flat backend: every explicit set is a `(offset, len)` window into
/// one contiguous arena. First writes append; later writes shrink in
/// place (the lattice only descends), leaving dead words behind the
/// shrunk window — tracked in `garbage` and reclaimed mid-solve by
/// [`DenseStore::compact`] once they dominate the arena, instead of
/// only being dropped at freeze. ⊤ is the offset sentinel.
pub(crate) struct DenseStore {
    off: Vec<u32>,
    len: Vec<u32>,
    arena: Vec<u32>,
    scratch: Vec<u32>,
    /// Second scratch set, ping-ponged with `scratch` by the merge-union
    /// evaluation of `Union` constraints.
    scratch2: Vec<u32>,
    /// Arena words no live window covers (shrunk-away tails, abandoned
    /// windows).
    garbage: usize,
}

impl DenseStore {
    pub(crate) fn new(num_vars: usize) -> Self {
        Self {
            off: vec![TOP_OFF; num_vars],
            len: vec![0; num_vars],
            // Most variables get a small first write; one reallocation-
            // amortised arena replaces per-set allocations entirely.
            arena: Vec::with_capacity(num_vars.saturating_mul(2)),
            scratch: Vec::new(),
            scratch2: Vec::new(),
            garbage: 0,
        }
    }

    #[inline]
    fn is_top(&self, v: usize) -> bool {
        self.off[v] == TOP_OFF
    }

    #[inline]
    fn slice_bounds(&self, v: usize) -> (usize, usize) {
        (self.off[v] as usize, self.len[v] as usize)
    }

    fn make_top(&mut self, x: usize) -> ChangeResult {
        if self.off[x] == TOP_OFF {
            ChangeResult::Unchanged
        } else {
            // Cannot happen under descending evaluation, but keep the
            // store total: mirror what the Arc backend would do.
            self.garbage += self.len[x] as usize;
            self.off[x] = TOP_OFF;
            self.len[x] = 0;
            ChangeResult::Changed
        }
    }

    /// Commits `self.scratch` as the new set of `x` if it differs from
    /// the current one.
    fn commit(&mut self, x: usize) -> ChangeResult {
        if self.off[x] != TOP_OFF {
            let (o, l) = self.slice_bounds(x);
            if self.arena[o..o + l] == self.scratch[..] {
                return ChangeResult::Unchanged;
            }
        }
        self.commit_changed(x)
    }

    /// Commits `self.scratch` as the new set of `x`, known to differ.
    fn commit_changed(&mut self, x: usize) -> ChangeResult {
        debug_assert!(self.scratch.windows(2).all(|w| w[0] < w[1]), "sets are sorted + dedup'd");
        #[cfg(debug_assertions)]
        if self.off[x] != TOP_OFF {
            let (o, l) = self.slice_bounds(x);
            let old = &self.arena[o..o + l];
            debug_assert!(
                self.scratch.iter().all(|e| old.binary_search(e).is_ok()),
                "LT(v{x}) must only shrink"
            );
        }
        let n = self.scratch.len();
        if self.off[x] != TOP_OFF && n <= self.len[x] as usize {
            let o = self.off[x] as usize;
            self.arena[o..o + n].copy_from_slice(&self.scratch);
            self.garbage += self.len[x] as usize - n;
        } else {
            if self.off[x] != TOP_OFF {
                // Unreachable under descending evaluation, but stay
                // total: the abandoned window is dead arena.
                self.garbage += self.len[x] as usize;
            }
            let o = self.arena.len();
            assert!(o + n < TOP_OFF as usize, "dense lattice arena overflow");
            self.arena.extend_from_slice(&self.scratch);
            self.off[x] = o as u32;
        }
        self.len[x] = n as u32;
        if self.garbage >= COMPACT_MIN_GARBAGE && self.garbage * 2 > self.arena.len() {
            self.compact();
        }
        ChangeResult::Changed
    }

    /// Slides every live window left over the dead words, in offset
    /// order, and truncates the arena. Windows are pairwise disjoint and
    /// sorted source offsets only decrease, so the left-to-right
    /// `copy_within` never overwrites unread data. Runs mid-solve (from
    /// [`DenseStore::commit_changed`]) so a long descending solve keeps
    /// its working set contiguous instead of only reclaiming at freeze.
    fn compact(&mut self) {
        let mut live: Vec<u32> =
            (0..self.off.len() as u32).filter(|&v| self.off[v as usize] != TOP_OFF).collect();
        live.sort_unstable_by_key(|&v| self.off[v as usize]);
        let mut w = 0usize;
        for v in live {
            let (o, l) = self.slice_bounds(v as usize);
            debug_assert!(w <= o, "live windows are disjoint and sorted");
            self.arena.copy_within(o..o + l, w);
            self.off[v as usize] = w as u32;
            w += l;
        }
        self.arena.truncate(w);
        self.garbage = 0;
    }

    /// Appends the current elements of `v` (nothing for ⊤) to `out`.
    fn extend_with_set(&self, out: &mut Vec<u32>, v: usize) {
        if self.off[v] != TOP_OFF {
            let (o, l) = self.slice_bounds(v);
            out.extend_from_slice(&self.arena[o..o + l]);
        }
    }

    /// Word-parallel component evaluation: project the component onto its
    /// candidate element universe, give every member a bitset row, and
    /// run the exact worklist schedule of [`iterate_component`] with
    /// `Union`/`Inter` as word operations. External inputs are final
    /// (topological order), so they fold into per-member static rows.
    fn solve_component_bitset(&mut self, cx: &ComponentCtx<'_>, stats: &mut SolveStats) {
        let k = cx.comp.len();

        // Member variables → local index, for internal/external reads.
        let mut member_vars: Vec<(u32, u32)> = cx
            .comp
            .iter()
            .enumerate()
            .map(|(l, &ci)| (cx.constraints[ci as usize].defined().raw(), l as u32))
            .collect();
        member_vars.sort_unstable();
        let local_of_var = |raw: u32| -> Option<u32> {
            member_vars.binary_search_by_key(&raw, |&(v, _)| v).ok().map(|p| member_vars[p].1)
        };

        // Candidate element universe: explicit `Union` elements plus
        // every element of every external (final) source set. Internal
        // sets are unions/intersections of these, so nothing else can
        // ever appear.
        let mut universe: Vec<u32> = Vec::new();
        for &ci in cx.comp {
            match &cx.constraints[ci as usize] {
                Constraint::Init { .. } => {}
                Constraint::Copy { source, .. } => {
                    if local_of_var(source.raw()).is_none() {
                        self.extend_with_set(&mut universe, source.index());
                    }
                }
                Constraint::Union { elems, sources, .. } => {
                    universe.extend(elems.iter().map(|e| e.raw()));
                    for s in sources {
                        if local_of_var(s.raw()).is_none() {
                            self.extend_with_set(&mut universe, s.index());
                        }
                    }
                }
                Constraint::Inter { sources, .. } => {
                    for s in sources {
                        if local_of_var(s.raw()).is_none() {
                            self.extend_with_set(&mut universe, s.index());
                        }
                    }
                }
            }
        }
        universe.sort_unstable();
        universe.dedup();
        let u = universe.len();
        if k.saturating_mul(u) > BITSET_BIT_BUDGET {
            return iterate_component(self, cx, stats);
        }
        let bit_of = |raw: u32| -> usize {
            universe.binary_search(&raw).expect("universe covers every candidate element")
        };

        // Per-member evaluation plan. `Copy`/`Init` canonicalise to
        // `Union` (of one source / of nothing).
        #[derive(Clone, Copy)]
        enum MKind {
            Union,
            Inter,
        }
        struct Member {
            kind: MKind,
            /// `Union`: some external source is ⊤ — the result is pinned ⊤.
            forced_top: bool,
            /// `Inter`: the static row holds the ∩ of external explicit
            /// sources (absent when every external source is ⊤).
            has_static: bool,
            edges: (u32, u32),
        }

        let mut statics = BitMatrix::new(k, u);
        let words = statics.words_per_row();
        let mut vals = BitMatrix::new(k, u);
        let mut top = vec![true; k];
        let mut internal: Vec<u32> = Vec::new();
        let mut scratch_row: Vec<u64> = vec![0; words];
        let mut members: Vec<Member> = Vec::with_capacity(k);

        for (l, &ci) in cx.comp.iter().enumerate() {
            let start = internal.len() as u32;
            let (kind, forced_top, has_static) = match &cx.constraints[ci as usize] {
                Constraint::Init { .. } => (MKind::Union, false, false),
                Constraint::Copy { source, .. } => {
                    let mut forced = false;
                    if let Some(ls) = local_of_var(source.raw()) {
                        internal.push(ls);
                    } else if self.is_top(source.index()) {
                        forced = true;
                    } else {
                        let (o, n) = self.slice_bounds(source.index());
                        for &e in &self.arena[o..o + n] {
                            statics.insert(l, bit_of(e));
                        }
                    }
                    (MKind::Union, forced, false)
                }
                Constraint::Union { elems, sources, .. } => {
                    let mut forced = false;
                    for e in elems {
                        statics.insert(l, bit_of(e.raw()));
                    }
                    for s in sources {
                        if let Some(ls) = local_of_var(s.raw()) {
                            internal.push(ls);
                        } else if self.is_top(s.index()) {
                            forced = true;
                        } else {
                            let (o, n) = self.slice_bounds(s.index());
                            for &e in &self.arena[o..o + n] {
                                statics.insert(l, bit_of(e));
                            }
                        }
                    }
                    (MKind::Union, forced, false)
                }
                Constraint::Inter { sources, .. } => {
                    let mut has_static = false;
                    for s in sources {
                        if let Some(ls) = local_of_var(s.raw()) {
                            internal.push(ls);
                        } else if !self.is_top(s.index()) {
                            scratch_row.fill(0);
                            let (o, n) = self.slice_bounds(s.index());
                            for &e in &self.arena[o..o + n] {
                                let b = bit_of(e);
                                scratch_row[b / 64] |= 1u64 << (b % 64);
                            }
                            if has_static {
                                for (a, b) in statics.row_mut(l).iter_mut().zip(&scratch_row) {
                                    *a &= b;
                                }
                            } else {
                                statics.row_mut(l).copy_from_slice(&scratch_row);
                                has_static = true;
                            }
                        }
                        // External ⊤ sources are the identity of ∩.
                    }
                    (MKind::Inter, false, has_static)
                }
            };
            members.push(Member {
                kind,
                forced_top,
                has_static,
                edges: (start, internal.len() as u32),
            });
        }

        // The exact schedule of `iterate_component`, over rows.
        let mut worklist: VecDeque<u32> = (0..k as u32).collect();
        let mut on_list = vec![true; k];
        while let Some(l) = worklist.pop_front() {
            let li = l as usize;
            on_list[li] = false;
            stats.pops += 1;
            let m = &members[li];
            let ints = &internal[m.edges.0 as usize..m.edges.1 as usize];
            let new_top = match m.kind {
                MKind::Union => {
                    if m.forced_top || ints.iter().any(|&s| top[s as usize]) {
                        true
                    } else {
                        scratch_row.copy_from_slice(statics.row(li));
                        for &s in ints {
                            for (a, b) in scratch_row.iter_mut().zip(vals.row(s as usize)) {
                                *a |= b;
                            }
                        }
                        false
                    }
                }
                MKind::Inter => {
                    let mut started = m.has_static;
                    if started {
                        scratch_row.copy_from_slice(statics.row(li));
                    }
                    for &s in ints {
                        if top[s as usize] {
                            continue; // ⊤ is the identity of ∩
                        }
                        if started {
                            for (a, b) in scratch_row.iter_mut().zip(vals.row(s as usize)) {
                                *a &= b;
                            }
                        } else {
                            scratch_row.copy_from_slice(vals.row(s as usize));
                            started = true;
                        }
                    }
                    !started
                }
            };
            let changed =
                if new_top { !top[li] } else { top[li] || vals.row(li) != &scratch_row[..] };
            if changed {
                top[li] = new_top;
                if !new_top {
                    vals.row_mut(li).copy_from_slice(&scratch_row);
                }
                for &d in cx.dependents(li) {
                    if !on_list[d as usize] {
                        on_list[d as usize] = true;
                        worklist.push_back(d);
                    }
                }
            }
        }

        // Write the stabilised rows back into the arena. Members still ⊤
        // keep their sentinel (the store never wrote them).
        for (l, &ci) in cx.comp.iter().enumerate() {
            if top[l] {
                continue;
            }
            let x = cx.constraints[ci as usize].defined().index();
            self.scratch.clear();
            for (w, &word) in vals.row(l).iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let tz = bits.trailing_zeros() as usize;
                    self.scratch.push(universe[w * 64 + tz]);
                    bits &= bits - 1;
                }
            }
            self.commit_changed(x);
        }
    }
}

impl LatticeStore for DenseStore {
    fn update(&mut self, c: &Constraint) -> ChangeResult {
        let x = c.defined().index();
        match c {
            Constraint::Init { .. } => {
                self.scratch.clear();
                self.commit(x)
            }
            Constraint::Copy { source, .. } => {
                let s = source.index();
                if self.is_top(s) {
                    return self.make_top(x);
                }
                let (so, sl) = self.slice_bounds(s);
                if !self.is_top(x) {
                    let (xo, xl) = self.slice_bounds(x);
                    if self.arena[xo..xo + xl] == self.arena[so..so + sl] {
                        return ChangeResult::Unchanged;
                    }
                }
                self.scratch.clear();
                // Split borrows: scratch and arena are disjoint fields.
                let (so, sl) = self.slice_bounds(s);
                self.scratch.extend_from_slice(&self.arena[so..so + sl]);
                self.commit_changed(x)
            }
            Constraint::Union { elems, sources, .. } => {
                if sources.iter().any(|s| self.is_top(s.index())) {
                    return self.make_top(x); // {x} ∪ ⊤ = ⊤
                }
                self.scratch.clear();
                self.scratch.extend(elems.iter().map(|e| e.raw()));
                self.scratch.sort_unstable();
                self.scratch.dedup();
                // Fold each (sorted) source set in with a run-copying
                // merge, ping-ponging between the two scratch buffers —
                // no concat-sort-dedup over the whole accumulation.
                for s in sources {
                    let (o, l) = self.slice_bounds(s.index());
                    if l == 0 {
                        continue;
                    }
                    self.scratch2.clear();
                    union_merge(&mut self.scratch2, &self.scratch, &self.arena[o..o + l]);
                    std::mem::swap(&mut self.scratch, &mut self.scratch2);
                }
                self.commit(x)
            }
            Constraint::Inter { sources, .. } => {
                debug_assert!(!sources.is_empty(), "empty intersections are generated as Init");
                // ⊤ is the identity of ∩: seed from the smallest explicit
                // source so the working set only shrinks.
                let mut seed: Option<usize> = None;
                for s in sources {
                    let si = s.index();
                    if !self.is_top(si) && seed.is_none_or(|b| self.len[si] < self.len[b]) {
                        seed = Some(si);
                    }
                }
                let Some(seed) = seed else {
                    return self.make_top(x); // all sources still ⊤
                };
                self.scratch.clear();
                let (o, l) = self.slice_bounds(seed);
                self.scratch.extend_from_slice(&self.arena[o..o + l]);
                for s in sources {
                    let si = s.index();
                    if si == seed || self.is_top(si) {
                        continue;
                    }
                    if self.scratch.is_empty() {
                        break;
                    }
                    let (o, l) = self.slice_bounds(si);
                    intersect_in_place(&mut self.scratch, &self.arena[o..o + l]);
                }
                self.commit(x)
            }
        }
    }

    fn solve_component(&mut self, cx: &ComponentCtx<'_>, stats: &mut SolveStats) {
        if cx.comp.len() >= BITSET_MIN_MEMBERS {
            self.solve_component_bitset(cx, stats);
        } else {
            iterate_component(self, cx, stats);
        }
    }

    fn freeze(self, mut stats: SolveStats) -> Solution {
        let n = self.off.len();
        let mut frozen = Vec::new();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let total: usize =
            (0..n).map(|i| if self.off[i] == TOP_OFF { 0 } else { self.len[i] as usize }).sum();
        let mut data = Vec::with_capacity(total);
        for i in 0..n {
            if self.off[i] == TOP_OFF {
                frozen.push(i as u32);
            } else {
                let (o, l) = (self.off[i] as usize, self.len[i] as usize);
                data.extend_from_slice(&self.arena[o..o + l]);
            }
            offsets.push(data.len() as u32);
        }
        stats.frozen_tops = frozen.len();
        Solution::from_flat(offsets, data, frozen.into_boxed_slice(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraint as C;
    use crate::var_index::VarId;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn vs(ids: &[u32]) -> Vec<VarId> {
        ids.iter().copied().map(VarId::new).collect()
    }

    #[test]
    fn backend_parses_cli_names() {
        assert_eq!(LatticeBackend::parse("auto"), Some(LatticeBackend::Auto));
        assert_eq!(LatticeBackend::parse("arc"), Some(LatticeBackend::Arc));
        assert_eq!(LatticeBackend::parse("dense"), Some(LatticeBackend::Dense));
        assert_eq!(LatticeBackend::parse("sparse"), None);
        assert_eq!(LatticeBackend::default(), LatticeBackend::Auto);
        for b in LatticeBackend::ALL {
            assert_eq!(LatticeBackend::parse(b.as_str()), Some(b));
            assert_eq!(format!("{b}"), b.as_str());
        }
    }

    #[test]
    fn explicit_backends_resolve_to_themselves() {
        for n in [0, 10, 1_000_000] {
            assert_eq!(LatticeBackend::Arc.resolve(n), ResolvedBackend::Arc);
            assert_eq!(LatticeBackend::Dense.resolve(n), ResolvedBackend::Dense);
        }
    }

    #[test]
    fn change_result_predicate() {
        assert!(ChangeResult::Changed.changed());
        assert!(!ChangeResult::Unchanged.changed());
    }

    #[test]
    fn dense_store_shrinks_in_place() {
        let mut store = DenseStore::new(3);
        // First write appends.
        store.scratch = vec![1, 2, 3];
        assert!(store.commit(0).changed());
        let arena_len = store.arena.len();
        // Descending rewrite shrinks in place: no arena growth.
        store.scratch = vec![2];
        assert!(store.commit(0).changed());
        assert_eq!(store.arena.len(), arena_len);
        assert_eq!(store.len[0], 1);
        // Identical rewrite is a no-op.
        store.scratch = vec![2];
        assert!(!store.commit(0).changed());
    }

    #[test]
    fn dense_store_compacts_mid_solve() {
        let big = COMPACT_MIN_GARBAGE as u32 * 2;
        let mut store = DenseStore::new(3);
        // Two fat windows, then shrink both to singletons: the dead
        // tails dominate the arena and must be swept without waiting
        // for freeze.
        store.scratch = (0..big).collect();
        assert!(store.commit(0).changed());
        store.scratch = (0..big).collect();
        assert!(store.commit(1).changed());
        assert_eq!(store.arena.len(), 2 * big as usize);
        store.scratch = vec![7];
        assert!(store.commit(0).changed());
        store.scratch = vec![9];
        assert!(store.commit(1).changed());
        assert_eq!(store.garbage, 0, "compaction resets the dead-word count");
        assert_eq!(store.arena.len(), 2, "arena shrinks to the live windows");
        // Live contents survive the slide, untouched vars stay ⊤.
        let sol = store.freeze(SolveStats::default());
        assert_eq!(sol.lt_set(v(0)), &[7][..]);
        assert_eq!(sol.lt_set(v(1)), &[9][..]);
        assert!(sol.was_top(v(2)));
    }

    #[test]
    fn compaction_preserves_offset_order_with_interleaved_tops() {
        let big = COMPACT_MIN_GARBAGE as u32 * 2;
        let mut store = DenseStore::new(4);
        for x in 0..4 {
            store.scratch = (0..big).collect();
            assert!(store.commit(x).changed());
        }
        // Demote one to ⊤ (window abandoned) and shrink the others.
        assert!(store.make_top(1).changed());
        for (x, e) in [(0usize, 10u32), (2, 20), (3, 30)] {
            store.scratch = vec![e];
            assert!(store.commit(x).changed());
        }
        assert_eq!(store.arena.len(), 3);
        let sol = store.freeze(SolveStats::default());
        assert_eq!(sol.lt_set(v(0)), &[10][..]);
        assert!(sol.was_top(v(1)));
        assert_eq!(sol.lt_set(v(2)), &[20][..]);
        assert_eq!(sol.lt_set(v(3)), &[30][..]);
    }

    #[test]
    fn pick_crossover_wants_a_dense_winning_suffix() {
        // Dense wins from 256 up: the crossover is the first size of the
        // winning suffix.
        assert_eq!(
            pick_crossover(&[(64, 10, 20), (128, 20, 25), (256, 40, 30), (512, 80, 45)]),
            Some(256)
        );
        // A noisy dense win below an arc win does not count: the suffix
        // must be unbroken.
        assert_eq!(
            pick_crossover(&[(64, 10, 8), (128, 20, 25), (256, 40, 30), (512, 80, 45)]),
            Some(256)
        );
        // Dense everywhere: the smallest probe.
        assert_eq!(pick_crossover(&[(64, 10, 9), (128, 20, 15)]), Some(64));
        // Arc everywhere (or at the top): no measured crossover.
        assert_eq!(pick_crossover(&[(64, 10, 20), (128, 20, 45)]), None);
        assert_eq!(pick_crossover(&[]), None);
    }

    #[test]
    fn calibration_probes_solve_and_threshold_is_positive() {
        // The probe systems must be solvable by both backends with equal
        // results (they feed timing, but must not diverge semantically).
        for &size in &CALIBRATION_PROBES {
            let (cs, n) = calibration_system(size);
            let a = crate::fast_solver::solve_fast_with(&cs, n, LatticeBackend::Arc);
            let d = crate::fast_solver::solve_fast_with(&cs, n, LatticeBackend::Dense);
            assert_eq!(a.stats, d.stats, "probe size {size}");
        }
        // Whatever the machine measures (or SRAA_DENSE_MIN pins), the
        // resolved threshold is a usable positive count.
        assert!(dense_min_constraints() > 0);
        assert_eq!(dense_min_constraints(), dense_min_constraints(), "cached per process");
    }

    #[test]
    fn dense_update_matches_eval_semantics() {
        // The example 3.4 kernel exercised constraint-by-constraint.
        let cs = [
            C::Init { x: v(0) },
            C::Union { x: v(1), elems: vs(&[0]), sources: vs(&[0]) },
            C::Inter { x: v(2), sources: vs(&[1, 3]) },
            C::Union { x: v(3), elems: vs(&[2]), sources: vs(&[2]) },
        ];
        let mut dense = DenseStore::new(4);
        let mut arc = ArcStore::new(4);
        // Chaotic order, including re-evaluations.
        for &i in &[0usize, 1, 2, 3, 2, 3, 2, 1, 0, 3, 2] {
            let d = dense.update(&cs[i]);
            let a = arc.update(&cs[i]);
            assert_eq!(d, a, "change results diverge at constraint {i}");
        }
        let ds = dense.freeze(SolveStats::default());
        let as_ = arc.freeze(SolveStats::default());
        for x in 0..4u32 {
            assert_eq!(ds.lt_set(v(x)), as_.lt_set(v(x)), "LT({x})");
            assert_eq!(ds.was_top(v(x)), as_.was_top(v(x)));
        }
    }

    #[test]
    fn intersect_in_place_matches_merge() {
        let mut acc = vec![1, 3, 5, 7];
        intersect_in_place(&mut acc, &[2, 3, 4, 7, 9]);
        assert_eq!(acc, vec![3, 7]);
        let mut acc = vec![1, 2];
        intersect_in_place(&mut acc, &[]);
        assert!(acc.is_empty());
    }

    mod properties {
        use super::*;
        use crate::fast_solver::solve_fast_with;
        use crate::solver::solve_with;
        use crate::test_systems::{grounded_systems, systems};
        use proptest::prelude::*;

        proptest! {
            /// The dense backend computes the identical solution — sets,
            /// frozen ⊤s, and the full deterministic statistics (pops
            /// included: the schedules must match, not just the limits) —
            /// for both solver strategies.
            #[test]
            fn dense_equals_arc((cs, n) in systems()) {
                for (a, d) in [
                    (solve_with(&cs, n, LatticeBackend::Arc),
                     solve_with(&cs, n, LatticeBackend::Dense)),
                    (solve_fast_with(&cs, n, LatticeBackend::Arc),
                     solve_fast_with(&cs, n, LatticeBackend::Dense)),
                ] {
                    prop_assert_eq!(&a.stats, &d.stats, "stats diverge (pops/sccs/frozen)");
                    for x in 0..n {
                        let x = VarId::from_index(x);
                        prop_assert_eq!(a.lt_set(x), d.lt_set(x), "LT({})", x);
                        prop_assert_eq!(a.was_top(x), d.was_top(x), "frozen({})", x);
                    }
                }
            }

            /// Same on fully grounded systems (the shape real constraint
            /// generation produces).
            #[test]
            fn dense_equals_arc_grounded((cs, n) in grounded_systems()) {
                let a = solve_fast_with(&cs, n, LatticeBackend::Arc);
                let d = solve_fast_with(&cs, n, LatticeBackend::Dense);
                prop_assert_eq!(&a.stats, &d.stats);
                for x in 0..n {
                    let x = VarId::from_index(x);
                    prop_assert_eq!(a.lt_set(x), d.lt_set(x), "LT({})", x);
                }
            }
        }
    }

    /// A component big enough to cross `BITSET_MIN_MEMBERS`, so the
    /// word-parallel path is exercised against the Arc oracle: a ring of
    /// φ-style `Inter`s threaded through `Union`s, grounded at one entry.
    #[test]
    fn large_cycle_uses_bitset_rows_and_agrees() {
        let k = 3 * BITSET_MIN_MEMBERS as u32;
        let mut cs = vec![C::Init { x: v(0) }];
        for i in 0..k {
            let cur = 1 + 2 * i;
            let nxt = 1 + 2 * ((i + 1) % k);
            // cur = φ(ground, around-the-ring); cur+1 = {cur} ∪ cur.
            cs.push(C::Inter { x: v(cur), sources: vs(&[0, nxt + 1]) });
            cs.push(C::Union { x: v(cur + 1), elems: vs(&[cur]), sources: vs(&[cur]) });
        }
        let n = (1 + 2 * k) as usize;
        let a = crate::solver::solve_with(&cs, n, LatticeBackend::Arc);
        let d = crate::fast_solver::solve_fast_with(&cs, n, LatticeBackend::Dense);
        let d2 = crate::fast_solver::solve_fast_with(&cs, n, LatticeBackend::Arc);
        assert!(d.stats.cyclic_sccs >= 1, "the ring must condense into a cyclic component");
        assert_eq!(d.stats, d2.stats, "bitset path must keep the exact schedule");
        for x in 0..n {
            let x = VarId::from_index(x);
            assert_eq!(a.lt_set(x), d.lt_set(x), "LT({x})");
            assert_eq!(a.was_top(x), d.was_top(x));
        }
    }
}
