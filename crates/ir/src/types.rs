//! Scalar types of the IR.
//!
//! The paper's core language (its Figure 2) manipulates *scalar* values
//! only: integers and pointers. Pointers carry a nesting depth so that the
//! Csmith-like workloads of the evaluation (Figure 12 varies `int*` through
//! `int*******`) are expressible.

use std::fmt;

/// A scalar IR type: a 64-bit signed integer or a pointer.
///
/// `Ptr(1)` is a pointer to `Int` (C's `int*`), `Ptr(2)` a pointer to
/// `Ptr(1)` (`int**`), and so on. Every scalar occupies exactly
/// [`Type::SIZE`] bytes in the interpreter's memory model, which keeps
/// pointer arithmetic uniform.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Type {
    /// 64-bit signed integer (also used for booleans: 0 or 1).
    Int,
    /// Pointer with the given nesting depth (≥ 1).
    Ptr(u8),
}

impl Type {
    /// Size in bytes of any scalar in the memory model.
    pub const SIZE: i64 = 8;

    /// Returns `true` if this is a pointer type.
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Returns `true` if this is the integer type.
    pub fn is_int(self) -> bool {
        matches!(self, Type::Int)
    }

    /// The type obtained by dereferencing this pointer type.
    ///
    /// Returns `None` for [`Type::Int`].
    pub fn pointee(self) -> Option<Type> {
        match self {
            Type::Int => None,
            Type::Ptr(1) => Some(Type::Int),
            Type::Ptr(d) => Some(Type::Ptr(d - 1)),
        }
    }

    /// The pointer type pointing to this type.
    ///
    /// # Panics
    ///
    /// Panics if the nesting depth would exceed `u8::MAX`.
    pub fn ptr_to(self) -> Type {
        match self {
            Type::Int => Type::Ptr(1),
            Type::Ptr(d) => Type::Ptr(d.checked_add(1).expect("pointer nesting too deep")),
        }
    }

    /// Pointer nesting depth: 0 for `Int`, `d` for `Ptr(d)`.
    pub fn depth(self) -> u8 {
        match self {
            Type::Int => 0,
            Type::Ptr(d) => d,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Ptr(d) => {
                write!(f, "int")?;
                for _ in 0..*d {
                    write!(f, "*")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointee_unwinds_depth() {
        assert_eq!(Type::Ptr(3).pointee(), Some(Type::Ptr(2)));
        assert_eq!(Type::Ptr(1).pointee(), Some(Type::Int));
        assert_eq!(Type::Int.pointee(), None);
    }

    #[test]
    fn ptr_to_wraps_depth() {
        assert_eq!(Type::Int.ptr_to(), Type::Ptr(1));
        assert_eq!(Type::Ptr(1).ptr_to(), Type::Ptr(2));
    }

    #[test]
    fn display_matches_c_spelling() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::Ptr(1).to_string(), "int*");
        assert_eq!(Type::Ptr(3).to_string(), "int***");
    }

    #[test]
    fn ptr_round_trip() {
        let t = Type::Int.ptr_to().ptr_to();
        assert_eq!(t.pointee().unwrap().pointee().unwrap(), Type::Int);
        assert_eq!(t.depth(), 2);
    }
}
