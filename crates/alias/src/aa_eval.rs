//! The `aa-eval` driver: all-pairs alias queries.
//!
//! LLVM's `aa-eval` pass, which the paper uses for its precision numbers
//! (§4.1), "tries to disambiguate every pair of pointers in the program":
//! within each function it collects every pointer-typed value and issues
//! one query per unordered pair, tallying `NoAlias` / `MayAlias` /
//! `MustAlias` verdicts per analysis.

use crate::{
    AliasAnalysis, AliasResult, AndersenAnalysis, BasicAliasAnalysis, Combined, PentagonAa,
    SteensgaardAnalysis, StrictInequalityAa,
};
use sraa_ir::{FuncId, Module, ModuleStats, Type, Value};

/// Per-analysis tallies over one module.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalSummary {
    /// Analysis display name.
    pub name: String,
    /// `NoAlias` verdicts.
    pub no_alias: u64,
    /// `MayAlias` verdicts.
    pub may_alias: u64,
    /// `MustAlias` verdicts.
    pub must_alias: u64,
}

impl EvalSummary {
    /// Total queries answered.
    pub fn total(&self) -> u64 {
        self.no_alias + self.may_alias + self.must_alias
    }

    /// Percentage of queries answered `NoAlias` — the paper's precision
    /// metric ("the higher the percentage, the more precise").
    pub fn no_alias_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.no_alias as f64 / self.total() as f64 * 100.0
        }
    }
}

/// All-pairs query driver.
#[derive(Clone, Copy, Debug, Default)]
pub struct AaEval;

impl AaEval {
    /// The pointer-typed values of `func` that `aa-eval` queries.
    pub fn pointer_values(module: &Module, func: FuncId) -> Vec<Value> {
        let f = module.function(func);
        let mut out = Vec::new();
        for b in f.block_ids() {
            for (v, data) in f.block_insts(b) {
                if data.ty.is_some_and(Type::is_ptr) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Total number of queries the module generates (one per unordered
    /// pair of pointer values, per function).
    pub fn num_queries(module: &Module) -> u64 {
        module
            .functions()
            .map(|(fid, _)| {
                let n = Self::pointer_values(module, fid).len() as u64;
                // `n.saturating_sub(1)`: pointer-free functions (integer
                // helpers) must contribute 0, not a debug-mode underflow.
                n * n.saturating_sub(1) / 2
            })
            .sum()
    }

    /// Runs every analysis over every pair, returning one summary per
    /// analysis (in input order).
    pub fn run(module: &Module, analyses: &[&dyn AliasAnalysis]) -> Vec<EvalSummary> {
        let mut summaries: Vec<EvalSummary> =
            analyses.iter().map(|a| EvalSummary { name: a.name(), ..Default::default() }).collect();
        for (fid, _) in module.functions() {
            let ptrs = Self::pointer_values(module, fid);
            for i in 0..ptrs.len() {
                for j in i + 1..ptrs.len() {
                    for (a, s) in analyses.iter().zip(&mut summaries) {
                        match a.alias(module, fid, ptrs[i], ptrs[j]) {
                            AliasResult::NoAlias => s.no_alias += 1,
                            AliasResult::MayAlias => s.may_alias += 1,
                            AliasResult::MustAlias => s.must_alias += 1,
                        }
                    }
                }
            }
        }
        summaries
    }
}

/// Renders the `sraa eval` report — header line plus one verdict row per
/// analysis (BA, LT, CF, ST, PT, BA+LT) — for a module already analysed
/// by `lt`. This is the single source of truth for that text: the CLI's
/// one-shot `eval` prints it, and the resident daemon (`sraa serve`)
/// pre-renders it at upload time so an `eval` query is a string lookup
/// whose reply stays byte-identical to `sraa eval`.
///
/// The module must be in e-SSA form (it is after building `lt`).
pub fn render_eval(module: &Module, lt: &StrictInequalityAa) -> String {
    use std::fmt::Write;
    let ba = BasicAliasAnalysis::new(module);
    let cf = AndersenAnalysis::new(module);
    let st = SteensgaardAnalysis::new(module);
    let pt = PentagonAa::on_prepared(module); // the engine already produced e-SSA
    let ba_lt =
        Combined::new(vec![Box::new(BasicAliasAnalysis::new(module)), Box::new(lt.clone())]);
    let stats = ModuleStats::compute(module);
    let mut out = String::new();
    writeln!(
        out,
        "{} function(s), {} instruction(s), {} queries",
        stats.functions,
        stats.instructions,
        AaEval::num_queries(module)
    )
    .expect("String write");
    let analyses: Vec<&dyn AliasAnalysis> = vec![&ba, lt, &cf, &st, &pt, &ba_lt];
    writeln!(out, "{:<8} {:>10} {:>10} {:>10} {:>8}", "analysis", "no-alias", "may", "must", "%no")
        .expect("String write");
    for s in AaEval::run(module, &analyses) {
        writeln!(
            out,
            "{:<8} {:>10} {:>10} {:>10} {:>7.2}%",
            s.name,
            s.no_alias,
            s.may_alias,
            s.must_alias,
            s.no_alias_rate()
        )
        .expect("String write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_agree_across_analyses() {
        let mut m = sraa_minic::compile(
            r#"
            int f(int* v, int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += v[i] + v[i + 1];
                return s;
            }
            int main() { int a[16]; return f(a, 15); }
            "#,
        )
        .unwrap();
        let lt = StrictInequalityAa::new(&mut m);
        let ba = BasicAliasAnalysis::new(&m);
        let out = AaEval::run(&m, &[&ba, &lt]);
        assert_eq!(out[0].total(), out[1].total());
        assert_eq!(out[0].total(), AaEval::num_queries(&m));
        assert!(out[0].total() > 0);
    }

    #[test]
    fn combination_dominates_both_parts() {
        let mut m = sraa_minic::compile(
            r#"
            void mix(int* v, int n) {
                int* w = malloc(8);
                for (int i = 0; i + 1 < n; i++) {
                    v[i] = v[i + 1];
                    w[i % 8] = v[i];
                }
            }
            int main() { int a[32]; mix(a, 31); return 0; }
            "#,
        )
        .unwrap();
        let lt = StrictInequalityAa::new(&mut m);
        let ba = BasicAliasAnalysis::new(&m);
        let ba2 = BasicAliasAnalysis::new(&m);
        let lt2 = lt.clone();
        let combined = Combined::new(vec![Box::new(ba2), Box::new(lt2)]);
        let out = AaEval::run(&m, &[&ba, &lt, &combined]);
        let (ba_s, lt_s, both) = (&out[0], &out[1], &out[2]);
        assert!(both.no_alias >= ba_s.no_alias);
        assert!(both.no_alias >= lt_s.no_alias);
        assert_eq!(both.name, "BA+LT");
    }

    #[test]
    fn render_eval_reports_every_analysis() {
        let mut m =
            sraa_minic::compile("int main() { int a[4]; a[0] = 1; a[1] = 2; return a[0] + a[1]; }")
                .unwrap();
        let lt = StrictInequalityAa::new(&mut m);
        let text = render_eval(&m, &lt);
        assert!(text.starts_with("1 function(s)"), "header first: {text}");
        for name in ["analysis", "BA", "LT", "CF", "ST", "PT", "BA+LT"] {
            assert!(text.contains(name), "missing row {name}: {text}");
        }
        assert_eq!(text.lines().count(), 8, "header + column row + 6 analyses");
        // Deterministic: two renders of the same engine agree byte-for-byte.
        assert_eq!(text, render_eval(&m, &lt));
    }

    #[test]
    fn no_alias_rate_is_a_percentage() {
        let s = EvalSummary { name: "X".into(), no_alias: 3, may_alias: 1, must_alias: 0 };
        assert!((s.no_alias_rate() - 75.0).abs() < 1e-9);
        let empty = EvalSummary::default();
        assert_eq!(empty.no_alias_rate(), 0.0);
    }
}
