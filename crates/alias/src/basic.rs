//! `BasicAliasAnalysis` — the reproduction of LLVM's `basic-aa` (the
//! paper's **BA** baseline).
//!
//! The paper describes it as "several heuristics to disambiguate pointers,
//! relying mostly on the fact that pointers derived from different
//! allocation sites cannot alias in well-formed programs". The heuristics
//! implemented here are the load-bearing ones:
//!
//! 1. identical pointers must alias;
//! 2. pointers based on *different identified objects* (distinct
//!    `alloca`/`malloc` sites, distinct globals) do not alias;
//! 3. a non-escaping local allocation cannot alias a pointer that comes
//!    from outside the function (parameters, loaded pointers, call
//!    results);
//! 4. same base object with distinct constant offsets → the accesses are
//!    disjoint scalar cells (`NoAlias`); equal constant offsets →
//!    `MustAlias`.
//!
//! Like LLVM's, this analysis is *intra-procedural* — a fact the paper
//! leans on when comparing PDG precision in its Figure 12.

use crate::{AliasAnalysis, AliasResult};
use sraa_ir::{FuncId, Function, GlobalId, InstKind, Module, Type, Value};

/// The identified object a pointer is based on, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Object {
    /// A stack allocation site (the `alloca` instruction).
    Alloca(Value),
    /// A heap allocation site (the `malloc` instruction).
    Malloc(Value),
    /// A module global (canonicalised by id: two `globaladdr`s of the same
    /// global are the same object).
    Global(GlobalId),
    /// A formal parameter.
    Param(Value),
    /// A pointer loaded from memory.
    Loaded(Value),
    /// A pointer returned by a call.
    FromCall(Value),
    /// Anything else (φ merges, opaque values, pointer arithmetic on
    /// integers, …).
    Other(Value),
}

impl Object {
    fn is_identified(self) -> bool {
        matches!(self, Object::Alloca(_) | Object::Malloc(_) | Object::Global(_))
    }

    fn is_local_allocation(self) -> bool {
        matches!(self, Object::Alloca(_) | Object::Malloc(_))
    }

    fn is_external(self) -> bool {
        matches!(self, Object::Param(_) | Object::Loaded(_) | Object::FromCall(_))
    }
}

/// Per-function decomposition of every pointer value.
#[derive(Clone, Debug)]
struct FuncInfo {
    /// `(object, constant element offset if statically known)` per value.
    decomp: Vec<Option<(Object, Option<i64>)>>,
    /// Allocation sites whose address escapes the function.
    escaped: Vec<bool>,
}

/// LLVM-`basic-aa`-style heuristic alias analysis. Build once per module
/// with [`BasicAliasAnalysis::new`]; queries are then O(1).
#[derive(Clone, Debug)]
pub struct BasicAliasAnalysis {
    funcs: Vec<FuncInfo>,
}

impl BasicAliasAnalysis {
    /// Precomputes base-object decompositions and escape information.
    pub fn new(module: &Module) -> Self {
        let funcs = module.functions().map(|(_, f)| analyze_function(f)).collect();
        Self { funcs }
    }
}

fn analyze_function(f: &Function) -> FuncInfo {
    let n = f.num_insts();
    let mut decomp: Vec<Option<(Object, Option<i64>)>> = vec![None; n];

    // Values are visited in block layout order, so operands are decomposed
    // before their users (SSA dominance); φs and cross-block cases fall
    // back to `Other`.
    for b in f.block_ids() {
        for (v, data) in f.block_insts(b) {
            if !data.ty.is_some_and(Type::is_ptr) {
                continue;
            }
            let d = match &data.kind {
                InstKind::Alloca { .. } => (Object::Alloca(v), Some(0)),
                InstKind::Malloc { .. } => (Object::Malloc(v), Some(0)),
                InstKind::GlobalAddr(g) => (Object::Global(*g), Some(0)),
                InstKind::Param(_) => (Object::Param(v), Some(0)),
                InstKind::Load { .. } => (Object::Loaded(v), Some(0)),
                InstKind::Call { .. } => (Object::FromCall(v), Some(0)),
                InstKind::Copy { src, .. } => match decomp.get(src.index()).copied().flatten() {
                    Some(d) => d,
                    None => (Object::Other(v), Some(0)),
                },
                InstKind::Gep { base, offset } => {
                    match decomp.get(base.index()).copied().flatten() {
                        Some((obj, Some(off))) => {
                            let coff = match f.inst(*offset).kind {
                                InstKind::Const(c) => Some(c),
                                _ => None,
                            };
                            (obj, coff.and_then(|c| off.checked_add(c)))
                        }
                        Some((obj, None)) => (obj, None),
                        None => (Object::Other(v), None),
                    }
                }
                _ => (Object::Other(v), None),
            };
            decomp[v.index()] = Some(d);
        }
    }

    // Escape analysis: an allocation escapes if (a pointer based on it) is
    // stored *as a value*, passed to a call, or returned.
    let mut escaped = vec![false; n];
    let mut mark = |decomp: &[Option<(Object, Option<i64>)>], v: Value| {
        if let Some((Object::Alloca(site) | Object::Malloc(site), _)) =
            decomp.get(v.index()).copied().flatten()
        {
            escaped[site.index()] = true;
        }
    };
    for b in f.block_ids() {
        for (_, data) in f.block_insts(b) {
            match &data.kind {
                InstKind::Store { value, .. } if f.value_type(*value).is_some_and(Type::is_ptr) => {
                    mark(&decomp, *value);
                }
                InstKind::Call { args, .. } => {
                    for a in args {
                        if f.value_type(*a).is_some_and(Type::is_ptr) {
                            mark(&decomp, *a);
                        }
                    }
                }
                InstKind::Ret(Some(v)) if f.value_type(*v).is_some_and(Type::is_ptr) => {
                    mark(&decomp, *v);
                }
                // A φ of pointers obscures the object: treat its operands
                // as escaped so rule 3 stays conservative.
                InstKind::Phi { incomings } if data.ty.is_some_and(Type::is_ptr) => {
                    for (_, x) in incomings {
                        mark(&decomp, *x);
                    }
                }
                _ => {}
            }
        }
    }

    FuncInfo { decomp, escaped }
}

impl AliasAnalysis for BasicAliasAnalysis {
    fn name(&self) -> String {
        "BA".to_string()
    }

    fn alias(&self, _module: &Module, func: FuncId, p1: Value, p2: Value) -> AliasResult {
        if p1 == p2 {
            return AliasResult::MustAlias;
        }
        let info = &self.funcs[func.index()];
        let (Some(Some((o1, off1))), Some(Some((o2, off2)))) =
            (info.decomp.get(p1.index()), info.decomp.get(p2.index()))
        else {
            return AliasResult::MayAlias;
        };
        let (o1, o2, off1, off2) = (*o1, *o2, *off1, *off2);

        if o1 == o2 {
            // Same base object: constant offsets decide.
            return match (off1, off2) {
                (Some(a), Some(b)) if a == b => AliasResult::MustAlias,
                (Some(a), Some(b)) if a != b => AliasResult::NoAlias,
                _ => AliasResult::MayAlias,
            };
        }

        // Distinct identified objects never alias.
        if o1.is_identified() && o2.is_identified() {
            return AliasResult::NoAlias;
        }

        // A non-escaping local allocation cannot be reached from outside.
        let non_escaping = |o: Object| match o {
            Object::Alloca(site) | Object::Malloc(site) => !info.escaped[site.index()],
            _ => false,
        };
        if (o1.is_local_allocation() && non_escaping(o1) && o2.is_external())
            || (o2.is_local_allocation() && non_escaping(o2) && o1.is_external())
        {
            return AliasResult::NoAlias;
        }

        AliasResult::MayAlias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepared(src: &str) -> (Module, BasicAliasAnalysis) {
        let m = sraa_minic::compile(src).unwrap();
        let ba = BasicAliasAnalysis::new(&m);
        (m, ba)
    }

    fn mem_ptrs(m: &Module, name: &str) -> (FuncId, Vec<Value>) {
        let fid = m.function_by_name(name).unwrap();
        let f = m.function(fid);
        let mut out = Vec::new();
        for b in f.block_ids() {
            for (_, d) in f.block_insts(b) {
                match &d.kind {
                    InstKind::Load { ptr } => out.push(*ptr),
                    InstKind::Store { ptr, .. } => out.push(*ptr),
                    _ => {}
                }
            }
        }
        (fid, out)
    }

    #[test]
    fn distinct_mallocs_do_not_alias() {
        let (m, ba) = prepared(
            "int main() { int* p = malloc(4); int* q = malloc(4); *p = 1; *q = 2; return *p; }",
        );
        let (fid, ptrs) = mem_ptrs(&m, "main");
        assert_eq!(ba.alias(&m, fid, ptrs[0], ptrs[1]), AliasResult::NoAlias);
    }

    #[test]
    fn distinct_globals_do_not_alias() {
        let (m, ba) = prepared("int a[4]; int b[4]; int main() { a[0] = 1; b[0] = 2; return 0; }");
        let (fid, ptrs) = mem_ptrs(&m, "main");
        assert_eq!(ba.alias(&m, fid, ptrs[0], ptrs[1]), AliasResult::NoAlias);
    }

    #[test]
    fn same_array_constant_offsets() {
        let (m, ba) =
            prepared("int main() { int a[8]; a[1] = 1; a[2] = 2; a[1] = 3; return a[1]; }");
        let (fid, ptrs) = mem_ptrs(&m, "main");
        // a[1] vs a[2]: disjoint; a[1] vs a[1]: must.
        assert_eq!(ba.alias(&m, fid, ptrs[0], ptrs[1]), AliasResult::NoAlias);
        assert_eq!(ba.alias(&m, fid, ptrs[0], ptrs[2]), AliasResult::MustAlias);
    }

    #[test]
    fn variable_offsets_on_same_array_may_alias() {
        let (m, ba) = prepared("int f(int* v, int i, int j) { return v[i] + v[j]; }");
        let (fid, ptrs) = mem_ptrs(&m, "f");
        assert_eq!(
            ba.alias(&m, fid, ptrs[0], ptrs[1]),
            AliasResult::MayAlias,
            "BA cannot see i < j — that is the paper's whole point"
        );
    }

    #[test]
    fn local_alloca_vs_parameter() {
        let (m, ba) = prepared("int f(int* p) { int a[4]; a[0] = 1; *p = 2; return a[0]; }");
        let (fid, ptrs) = mem_ptrs(&m, "f");
        assert_eq!(ba.alias(&m, fid, ptrs[0], ptrs[1]), AliasResult::NoAlias);
    }

    #[test]
    fn escaped_alloca_vs_loaded_pointer_may_alias() {
        let (m, ba) = prepared(
            r#"
            int g(int* p) { return *p; }
            int f(int** slot) {
                int a[4];
                g(a);              // a escapes via the call
                int* q = *slot;
                a[0] = 1;
                *q = 2;
                return a[0];
            }
            "#,
        );
        let (fid, ptrs) = mem_ptrs(&m, "f");
        // load *slot produces q; then a[0] store vs *q store.
        let a0 = ptrs[ptrs.len() - 3];
        let q = ptrs[ptrs.len() - 2];
        assert_eq!(ba.alias(&m, fid, a0, q), AliasResult::MayAlias);
    }

    #[test]
    fn identical_pointer_is_must() {
        let (m, ba) = prepared("int f(int* p) { return *p; }");
        let (fid, ptrs) = mem_ptrs(&m, "f");
        assert_eq!(ba.alias(&m, fid, ptrs[0], ptrs[0]), AliasResult::MustAlias);
    }
}
