//! The worklist constraint solver — the paper's Section 3.4 — and the
//! solver-independent [`Solution`] / [`SolveStats`] types both fixpoint
//! strategies produce.
//!
//! Every `LT(x)` starts at ⊤ = `V` (the set of all program variables) and
//! decreases monotonically until a fixed point — the greatest fixpoint
//! over the lattice `PV = ⟨V, ∩, ⊥ = ∅, ⊤ = V, ⊆⟩` (paper Theorem 3.7).
//! Rather than materialising `V` per variable (quadratic memory), ⊤ is
//! represented symbolically ([`LtSet::Top`]); the set algebra itself lives
//! in [`crate::lt_set`] and is shared verbatim with the SCC solver
//! ([`crate::fast_solver`]) — the two differ only in scheduling.
//!
//! The solver counts worklist pops: the paper reports that, in practice,
//! each constraint is visited ≈ 2.12 times before the fixpoint, which is
//! what makes the cubic worst case behave linearly ([`SolveStats`]
//! reproduces that measurement).
//!
//! Variables whose set is still ⊤ at the fixpoint can only belong to code
//! unreachable from any grounded definition (e.g. dead functions);
//! the freeze step in `Solution::freeze` conservatively demotes them to
//! ∅ so that queries never rely on vacuous facts.

use crate::constraints::Constraint;
use crate::lattice::{ArcStore, DenseStore, LatticeBackend, LatticeStore, ResolvedBackend};
use crate::lt_set::{empty_arc, LtSet};
use crate::var_index::VarId;
use std::sync::Arc;

/// Counters for the scalability study (paper §4.2 and Figure 11), shared
/// by both solver strategies. The worklist solver leaves the SCC fields
/// at zero; the per-phase and cache fields are filled by the
/// [`DisambiguationEngine`](crate::DisambiguationEngine) after the solve.
///
/// Equality deliberately **ignores the two wall-clock fields**
/// (`summary_build_ns`, `final_solve_ns`): every other counter is
/// deterministic for a given input, and the differential tests rely on
/// comparing stats across runs and solver strategies.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// Number of constraints solved.
    pub constraints: usize,
    /// Number of variables in the system.
    pub variables: usize,
    /// Constraint evaluations until the fixed point: worklist pops for
    /// the baseline strategy (≈ 2 × constraints in practice), per-SCC
    /// evaluations for the condensation strategy.
    pub pops: u64,
    /// Variables still ⊤ at the fixpoint, demoted to ∅ by the freeze.
    pub frozen_tops: usize,
    /// Strongly connected components in the constraint dependency graph
    /// (SCC strategy only; 0 for the worklist).
    pub sccs: usize,
    /// Components with more than one constraint (or a self-loop).
    pub cyclic_sccs: usize,
    /// Cyclic components short-circuited as union-only (stay ⊤, frozen ∅).
    pub union_cycles: usize,
    /// Wall-clock nanoseconds the engine spent building interprocedural
    /// summaries (0 in intraprocedural mode). Excluded from equality.
    pub summary_build_ns: u64,
    /// Wall-clock nanoseconds of the module-wide fixpoint solve(s) —
    /// the initial solve plus any parameter-pair refinement re-solves.
    /// Excluded from equality.
    pub final_solve_ns: u64,
    /// Warm-run summary-cache hits (functions reused; see
    /// [`CacheOutcome`](crate::CacheOutcome)). 0 without `--summary-cache`.
    pub cache_hits: u32,
    /// Warm-run summary-cache misses (functions absent from the cache).
    pub cache_misses: u32,
    /// Warm-run summary-cache invalidations (entries whose key changed).
    pub cache_invalidated: u32,
    /// Shared-store hits (functions whose content-addressed key was
    /// already solved by *any* module or process publishing into the
    /// store). 0 without `--shared-store`.
    pub store_hits: u32,
    /// Shared-store misses (keys absent from the store; solved cold and
    /// then published).
    pub store_misses: u32,
    /// Summaries this run newly inserted into the shared store.
    pub store_published: u32,
    /// Heap allocations observed over the solve, when a counting
    /// allocator is installed (the bench harness fills this in; 0 means
    /// "not measured"). Excluded from equality, like the wall-clock
    /// fields: the count depends on the measuring harness, not on the
    /// solution.
    pub alloc_count: u64,
    /// Peak resident set size in KiB at the end of the run, as reported
    /// by the OS (`VmHWM`); filled by the bench harness, 0 when not
    /// measured. Excluded from equality.
    pub peak_rss_kb: u64,
}

impl PartialEq for SolveStats {
    fn eq(&self, other: &Self) -> bool {
        // Everything but the timing and memory-measurement fields.
        (
            self.constraints,
            self.variables,
            self.pops,
            self.frozen_tops,
            self.sccs,
            self.cyclic_sccs,
            self.union_cycles,
        ) == (
            other.constraints,
            other.variables,
            other.pops,
            other.frozen_tops,
            other.sccs,
            other.cyclic_sccs,
            other.union_cycles,
        ) && (
            self.cache_hits,
            self.cache_misses,
            self.cache_invalidated,
            self.store_hits,
            self.store_misses,
            self.store_published,
        ) == (
            other.cache_hits,
            other.cache_misses,
            other.cache_invalidated,
            other.store_hits,
            other.store_misses,
            other.store_published,
        )
    }
}

impl Eq for SolveStats {}

impl SolveStats {
    /// Evaluations per constraint — the paper reports ≈ 2.12 on its
    /// corpus for the worklist; the SCC strategy achieves exactly 1.0 on
    /// acyclic systems.
    pub fn pops_per_constraint(&self) -> f64 {
        if self.constraints == 0 {
            0.0
        } else {
            self.pops as f64 / self.constraints as f64
        }
    }
}

/// The solved less-than relation: one sorted, shareable slice per
/// variable. Produced by either strategy ([`solve`],
/// [`solve_fast`](crate::fast_solver::solve_fast)) — the representation,
/// query API and iteration order are identical, so downstream consumers
/// cannot tell the strategies apart (the differential tests insist).
#[derive(Clone, Debug)]
pub struct Solution {
    sets: Sets,
    /// Sorted raw ids that were still ⊤ pre-freeze (dead/ungrounded code).
    frozen: Box<[u32]>,
    /// Solver statistics.
    pub stats: SolveStats,
}

/// Internal set storage — mirrors the [`LatticeBackend`] the solve ran
/// with. The query API is representation-agnostic; only the (test-only)
/// sharing probe can tell the variants apart.
#[derive(Clone, Debug)]
enum Sets {
    /// One shared slice per variable (the Arc backend).
    Shared(Vec<Arc<[u32]>>),
    /// One contiguous CSR: `data[offsets[x]..offsets[x+1]]` is `LT(x)`
    /// (the dense backend, compacted at freeze time).
    Flat { offsets: Vec<u32>, data: Vec<u32> },
}

impl Solution {
    /// Final step of either solver: demote residual ⊤ (vacuous facts in
    /// unreachable code) to ∅, recording which variables were demoted.
    pub(crate) fn freeze(sets: Vec<LtSet>, mut stats: SolveStats) -> Self {
        let mut frozen = Vec::new();
        let sets: Vec<Arc<[u32]>> = sets
            .into_iter()
            .enumerate()
            .map(|(i, s)| match s {
                LtSet::Top => {
                    frozen.push(i as u32);
                    empty_arc()
                }
                LtSet::Elems(a) => a,
            })
            .collect();
        stats.frozen_tops = frozen.len();
        Self { sets: Sets::Shared(sets), frozen: frozen.into_boxed_slice(), stats }
    }

    /// A solution over compacted CSR storage (the dense backend's freeze;
    /// `stats.frozen_tops` is already set by the caller).
    pub(crate) fn from_flat(
        offsets: Vec<u32>,
        data: Vec<u32>,
        frozen: Box<[u32]>,
        stats: SolveStats,
    ) -> Self {
        debug_assert_eq!(stats.frozen_tops, frozen.len());
        Self { sets: Sets::Flat { offsets, data }, frozen, stats }
    }

    /// Whether variable `a` is strictly less than `b` (i.e. `a ∈ LT(b)`).
    pub fn less_than(&self, a: VarId, b: VarId) -> bool {
        b.index() < self.num_vars() && self.lt_set(b).binary_search(&a.raw()).is_ok()
    }

    /// The `LT` set of `x` as a sorted slice of raw [`VarId`]s.
    pub fn lt_set(&self, x: VarId) -> &[u32] {
        match &self.sets {
            Sets::Shared(sets) => &sets[x.index()],
            Sets::Flat { offsets, data } => {
                &data[offsets[x.index()] as usize..offsets[x.index() + 1] as usize]
            }
        }
    }

    /// The `LT` set of `x` in ascending [`VarId`] order.
    pub fn lt_vars(&self, x: VarId) -> impl Iterator<Item = VarId> + '_ {
        self.lt_set(x).iter().map(|&i| VarId::new(i))
    }

    /// Whether `x` was still ⊤ at the fixpoint (and therefore frozen to
    /// ∅). Such variables sit in code unreachable from any grounded
    /// definition; the raw greatest fixpoint would keep them at `V`.
    pub fn was_top(&self, x: VarId) -> bool {
        self.frozen.binary_search(&(x.index() as u32)).is_ok()
    }

    /// Number of variables in the solution.
    pub fn num_vars(&self) -> usize {
        match &self.sets {
            Sets::Shared(sets) => sets.len(),
            Sets::Flat { offsets, .. } => offsets.len() - 1,
        }
    }

    /// The shared allocation behind `LT(x)` — exposed for the sharing
    /// tests, which pin the Arc backend explicitly.
    #[cfg(test)]
    pub(crate) fn set_arc(&self, x: VarId) -> &Arc<[u32]> {
        match &self.sets {
            Sets::Shared(sets) => &sets[x.index()],
            Sets::Flat { .. } => panic!("set_arc requires the arc lattice backend"),
        }
    }

    /// Histogram entry: how many variables have an `LT` set of size `n`?
    /// The paper observes that over 95% of the sets hold ≤ 2 elements.
    pub fn size_histogram(&self) -> Vec<(usize, usize)> {
        let mut counts: std::collections::BTreeMap<usize, usize> = Default::default();
        for x in 0..self.num_vars() {
            *counts.entry(self.lt_set(VarId::from_index(x)).len()).or_default() += 1;
        }
        counts.into_iter().collect()
    }
}

/// Solves the constraint system over `num_vars` variables with the
/// paper's FIFO worklist and the [`LatticeBackend::Auto`] storage.
/// Produces the same fixpoint as
/// [`solve_fast`](crate::fast_solver::solve_fast).
pub fn solve(constraints: &[Constraint], num_vars: usize) -> Solution {
    solve_with(constraints, num_vars, LatticeBackend::Auto)
}

/// [`solve`] with an explicit lattice storage backend. The backend never
/// changes the result, the statistics, or the evaluation schedule — only
/// the memory layout the fixpoint is computed in.
pub fn solve_with(
    constraints: &[Constraint],
    num_vars: usize,
    lattice: LatticeBackend,
) -> Solution {
    match lattice.resolve(constraints.len()) {
        ResolvedBackend::Arc => solve_impl(constraints, num_vars, ArcStore::new(num_vars)),
        ResolvedBackend::Dense => solve_impl(constraints, num_vars, DenseStore::new(num_vars)),
    }
}

fn solve_impl<S: LatticeStore>(
    constraints: &[Constraint],
    num_vars: usize,
    mut store: S,
) -> Solution {
    // dependents[v] = indexes of constraints whose RHS reads LT(v), in
    // CSR form (two counting passes; the nested-Vec equivalent is the
    // worklist solver's single biggest allocation cost).
    let mut dep_offsets = vec![0u32; num_vars + 1];
    for c in constraints {
        for r in c.reads() {
            dep_offsets[r.index() + 1] += 1;
        }
    }
    for i in 0..num_vars {
        dep_offsets[i + 1] += dep_offsets[i];
    }
    let mut cursor: Vec<u32> = dep_offsets[..num_vars].to_vec();
    let mut dep_edges = vec![0u32; dep_offsets[num_vars] as usize];
    for (ci, c) in constraints.iter().enumerate() {
        for r in c.reads() {
            dep_edges[cursor[r.index()] as usize] = ci as u32;
            cursor[r.index()] += 1;
        }
    }

    let mut stats =
        SolveStats { constraints: constraints.len(), variables: num_vars, ..Default::default() };

    // Seed with every constraint, in order.
    let mut worklist: std::collections::VecDeque<u32> = (0..constraints.len() as u32).collect();
    let mut on_list = vec![true; constraints.len()];

    while let Some(ci) = worklist.pop_front() {
        on_list[ci as usize] = false;
        stats.pops += 1;
        let c = &constraints[ci as usize];
        if store.update(c).changed() {
            let x = c.defined().index();
            for &d in &dep_edges[dep_offsets[x] as usize..dep_offsets[x + 1] as usize] {
                if !on_list[d as usize] {
                    on_list[d as usize] = true;
                    worklist.push_back(d);
                }
            }
        }
    }

    store.freeze(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraint as C;
    use crate::var_index::VarId;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn vs(ids: &[u32]) -> Vec<VarId> {
        ids.iter().copied().map(VarId::new).collect()
    }

    /// The paper's Example 3.4 constraint system (from its Figure 6
    /// program) with the variable numbering
    /// x0=0, x1=1, x2=2, x3=3, x4=4, x5=5, x6=6, x1t=7, x1f=8, x4t=9, x4f=10.
    fn example_3_4() -> Vec<C> {
        vec![
            C::Init { x: v(0) },                                         // LT(x0) = ∅
            C::Union { x: v(1), elems: vs(&[0]), sources: vs(&[0]) },    // LT(x1) = {x0} ∪ LT(x0)
            C::Inter { x: v(2), sources: vs(&[1, 3]) },                  // LT(x2) = LT(x1) ∩ LT(x3)
            C::Union { x: v(3), elems: vs(&[2]), sources: vs(&[2]) },    // LT(x3) = {x2} ∪ LT(x2)
            C::Init { x: v(4) },                                         // LT(x4) = ∅
            C::Union { x: v(5), elems: vs(&[4]), sources: vs(&[2]) },    // LT(x5) = {x4} ∪ LT(x2)
            C::Union { x: v(7), elems: vs(&[9]), sources: vs(&[9, 1]) }, // LT(x1t)
            C::Copy { x: v(8), source: v(1) },                           // LT(x1f) = LT(x1)
            C::Union { x: v(10), elems: vec![], sources: vs(&[8, 4]) },  // LT(x4f)
            C::Copy { x: v(9), source: v(4) },                           // LT(x4t) = LT(x4)
            C::Inter { x: v(6), sources: vs(&[3, 9, 4]) },               // LT(x6)
        ]
    }

    /// The paper's Example 3.5 expected fixpoint, literally.
    #[test]
    fn example_3_5_fixpoint() {
        let sol = solve(&example_3_4(), 11);
        let set = |x: u32| sol.lt_set(v(x)).to_vec();
        assert_eq!(set(0), vec![] as Vec<u32>, "LT(x0) = ∅");
        assert_eq!(set(4), vec![] as Vec<u32>, "LT(x4) = ∅");
        assert_eq!(set(9), vec![] as Vec<u32>, "LT(x4t) = ∅");
        assert_eq!(set(6), vec![] as Vec<u32>, "LT(x6) = ∅");
        assert_eq!(set(1), vec![0], "LT(x1) = {{x0}}");
        assert_eq!(set(2), vec![0], "LT(x2) = {{x0}}");
        assert_eq!(set(10), vec![0], "LT(x4f) = {{x0}}");
        assert_eq!(set(8), vec![0], "LT(x1f) = {{x0}}");
        assert_eq!(set(3), vec![0, 2], "LT(x3) = {{x0, x2}}");
        assert_eq!(set(5), vec![0, 4], "LT(x5) = {{x0, x4}}");
        assert_eq!(set(7), vec![0, 9], "LT(x1t) = {{x0, x4t}}");
    }

    #[test]
    fn transitivity_through_union_chains() {
        // x1 = x0 + 1; x2 = x1 + 1; x3 = x2 + 1 → LT(x3) = {x0, x1, x2}.
        let cs = vec![
            C::Init { x: v(0) },
            C::Union { x: v(1), elems: vs(&[0]), sources: vs(&[0]) },
            C::Union { x: v(2), elems: vs(&[1]), sources: vs(&[1]) },
            C::Union { x: v(3), elems: vs(&[2]), sources: vs(&[2]) },
        ];
        let sol = solve(&cs, 4);
        assert_eq!(sol.lt_set(v(3)), &[0, 1, 2]);
        assert!(sol.less_than(v(0), v(3)), "transitive closure: x0 < x3");
        assert_eq!(sol.lt_vars(v(3)).collect::<Vec<_>>(), vs(&[0, 1, 2]));
    }

    #[test]
    fn loop_phi_reaches_fixpoint() {
        // i = φ(c, i2); i2 = i + 1, with c grounded at ∅.
        let cs = vec![
            C::Init { x: v(0) },                                      // c
            C::Inter { x: v(1), sources: vs(&[0, 2]) },               // i
            C::Union { x: v(2), elems: vs(&[1]), sources: vs(&[1]) }, // i2
        ];
        let sol = solve(&cs, 3);
        assert_eq!(sol.lt_set(v(1)), &[] as &[u32]);
        assert_eq!(sol.lt_set(v(2)), &[1]);
        assert!(sol.stats.pops >= cs.len() as u64);
    }

    #[test]
    fn tops_are_frozen_to_empty() {
        // A union cycle with no grounding (dead code): stays ⊤, frozen.
        let cs = vec![
            C::Union { x: v(0), elems: vs(&[1]), sources: vs(&[1]) },
            C::Union { x: v(1), elems: vs(&[0]), sources: vs(&[0]) },
        ];
        let sol = solve(&cs, 2);
        assert_eq!(sol.stats.frozen_tops, 2);
        assert!(!sol.less_than(v(0), v(1)), "frozen ⊤ must answer conservatively");
        assert!(!sol.less_than(v(1), v(0)));
        assert!(sol.was_top(v(0)) && sol.was_top(v(1)));
    }

    #[test]
    fn frozen_tracking_distinguishes_grounded_vars() {
        let cs =
            vec![C::Init { x: v(0) }, C::Union { x: v(1), elems: vs(&[0]), sources: vs(&[0]) }];
        let sol = solve(&cs, 3); // v2 is undefined → stays ⊤ → frozen
        assert!(!sol.was_top(v(0)) && !sol.was_top(v(1)));
        assert!(sol.was_top(v(2)));
        assert_eq!(sol.stats.frozen_tops, 1);
    }

    #[test]
    fn pops_stay_near_linear() {
        // A long chain: every constraint should be visited O(1) times.
        let n = 1000u32;
        let mut cs = vec![C::Init { x: v(0) }];
        for i in 1..n {
            cs.push(C::Union { x: v(i), elems: vs(&[i - 1]), sources: vs(&[i - 1]) });
        }
        let sol = solve(&cs, n as usize);
        assert!(
            sol.stats.pops_per_constraint() <= 3.0,
            "chain should be ~1 pop per constraint, got {}",
            sol.stats.pops_per_constraint()
        );
        assert_eq!(sol.lt_set(v(n - 1)).len(), n as usize - 1);
    }

    #[test]
    fn histogram_counts_set_sizes() {
        let cs = vec![
            C::Init { x: v(0) },
            C::Union { x: v(1), elems: vs(&[0]), sources: vs(&[0]) },
            C::Union { x: v(2), elems: vs(&[1]), sources: vs(&[1]) },
        ];
        let sol = solve(&cs, 3);
        let h = sol.size_histogram();
        assert_eq!(h, vec![(0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn empty_system() {
        let sol = solve(&[], 0);
        assert_eq!(sol.stats.pops, 0);
        assert_eq!(sol.stats.constraints, 0);
        assert_eq!(sol.num_vars(), 0);
    }
}
