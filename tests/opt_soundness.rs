//! Differential soundness of the alias-analysis clients (`sraa-opt`).
//!
//! For every program in the corpus and every oracle (the pessimistic
//! baseline, BA, BA+LT), redundant-load elimination followed by
//! dead-store elimination must preserve the program's observable result
//! (the value `main` returns) — while executing no more memory traffic
//! than the original. The monotonicity the experiment relies on — a
//! stronger oracle never removes fewer operations — is asserted here
//! too, as an empirical property of the corpus.

use sraa_alias::{AliasAnalysis, BasicAliasAnalysis, Combined, NoAa, StrictInequalityAa};
use sraa_ir::{Frame, Interpreter, Module, Observer, Value};
use sraa_opt::{eliminate_dead_stores, eliminate_redundant_loads, hoist_invariant_loads, OptStats};

/// Counts executed loads and stores.
#[derive(Default)]
struct MemCounter {
    loads: u64,
    stores: u64,
}

impl Observer for MemCounter {
    fn on_access(&mut self, _frame: &Frame, _inst: Value, _addr: i64, is_store: bool) {
        if is_store {
            self.stores += 1;
        } else {
            self.loads += 1;
        }
    }
}

fn run_counted(module: &Module) -> (Option<i64>, u64, u64) {
    let mut counter = MemCounter::default();
    let mut interp = Interpreter::new(module).with_step_limit(5_000_000);
    let trace = interp.run_observed("main", &[], &mut counter).expect("execution");
    (trace.result, counter.loads, counter.stores)
}

/// Which oracle to build for an optimisation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Oracle {
    None,
    Ba,
    BaLt,
}

/// Compiles `source`, optimises under `oracle`, returns the observed
/// result and memory counts.
fn optimize_and_run(source: &str, name: &str, oracle: Oracle) -> (Option<i64>, u64, u64, OptStats) {
    let mut module = sraa_minic::compile(source).unwrap_or_else(|e| panic!("{name}: compile: {e}"));
    // Convert to e-SSA in every configuration so all oracles see the same
    // program and the optimised modules are comparable.
    let lt = StrictInequalityAa::new(&mut module);
    let aa: Box<dyn AliasAnalysis> = match oracle {
        Oracle::None => Box::new(NoAa),
        Oracle::Ba => Box::new(BasicAliasAnalysis::new(&module)),
        Oracle::BaLt => {
            Box::new(Combined::new(vec![Box::new(BasicAliasAnalysis::new(&module)), Box::new(lt)]))
        }
    };
    let mut stats = eliminate_redundant_loads(&mut module, aa.as_ref());
    stats += eliminate_dead_stores(&mut module, aa.as_ref());
    stats += hoist_invariant_loads(&mut module, aa.as_ref());
    sraa_ir::verify(&module).unwrap_or_else(|e| panic!("{name}/{oracle:?}: verify: {e}"));
    let (result, loads, stores) = run_counted(&module);
    (result, loads, stores, stats)
}

/// The full differential check for one program.
fn check_program(source: &str, name: &str) {
    let module = sraa_minic::compile(source).unwrap_or_else(|e| panic!("{name}: compile: {e}"));
    let (want, base_loads, base_stores) = run_counted(&module);

    let mut prev = OptStats::default();
    for oracle in [Oracle::None, Oracle::Ba, Oracle::BaLt] {
        let (got, loads, stores, stats) = optimize_and_run(source, name, oracle);
        assert_eq!(got, want, "{name}/{oracle:?}: observable result changed");
        assert!(
            loads <= base_loads,
            "{name}/{oracle:?}: executed more loads ({loads} > {base_loads})"
        );
        assert!(
            stores <= base_stores,
            "{name}/{oracle:?}: executed more stores ({stores} > {base_stores})"
        );
        assert!(
            stats.loads_eliminated >= prev.loads_eliminated
                && stats.stores_eliminated >= prev.stores_eliminated
                && stats.loads_hoisted >= prev.loads_hoisted,
            "{name}: stronger oracle {oracle:?} removed less ({stats:?} < {prev:?})"
        );
        prev = stats;
    }
}

#[test]
fn optimisations_preserve_csmith_program_behaviour() {
    for seed in 0..20u64 {
        let w = sraa_synth::csmith_generate(sraa_synth::CsmithConfig {
            seed: 4_200 + seed,
            max_ptr_depth: (2 + seed % 6) as u8,
            num_stmts: 40 + (seed as usize % 3) * 20,
            helpers: 0,
        });
        check_program(&w.source, &w.name);
    }
}

#[test]
fn optimisations_preserve_spec_workload_behaviour() {
    for w in sraa_synth::spec_all().into_iter().take(5) {
        check_program(&w.source, &w.name);
    }
}

#[test]
fn optimisations_preserve_kernel_behaviour() {
    // The oracle-sensitive corpus of the `applicability_opt` experiment:
    // exactly the programs where the passes fire differently per oracle.
    for w in sraa_synth::optk_all(3) {
        check_program(&w.source, &w.name);
    }
}

#[test]
fn lt_keeps_facts_across_ordered_stores() {
    // The motivating pattern: inside the loop, `v[j] = ...` cannot kill
    // the remembered value of v[i] when i < j is proven — BA alone sees
    // two variable offsets into one array and must assume interference.
    let src = r#"
        int sum(int* v, int N) {
            int s = 0;
            for (int i = 0, j = N; i < j; i++, j--) {
                int x = v[i];
                v[j] = x + 1;
                s = s + v[i];
            }
            return s;
        }
        int main() {
            int a[10];
            for (int k = 0; k < 10; k++) a[k] = k;
            return sum(a, 9);
        }
    "#;
    check_program(src, "ordered-stores");
    let (_, _, _, ba) = optimize_and_run(src, "ordered-stores", Oracle::Ba);
    let (_, _, _, lt) = optimize_and_run(src, "ordered-stores", Oracle::BaLt);
    assert!(
        lt.loads_eliminated > ba.loads_eliminated,
        "BA+LT ({lt:?}) must beat BA ({ba:?}) on the motivating pattern"
    );
}

#[test]
fn figure_1_programs_survive_optimisation() {
    check_program(
        r#"
        void ins_sort(int* v, int N) {
            for (int i = 0; i < N - 1; i++)
                for (int j = i + 1; j < N; j++)
                    if (v[i] > v[j]) { int t = v[i]; v[i] = v[j]; v[j] = t; }
        }
        int main() {
            int a[12];
            for (int k = 0; k < 12; k++) a[k] = 100 - 7 * k;
            ins_sort(a, 12);
            int bad = 0;
            for (int k = 0; k + 1 < 12; k++) if (a[k] > a[k + 1]) bad = bad + 1;
            return bad;
        }
        "#,
        "fig1a-opt",
    );
}
