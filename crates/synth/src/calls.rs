//! Call-heavy workloads — the population the interprocedural summary
//! layer is measured on.
//!
//! The paper's analysis is intraprocedural, so none of its figures
//! contain programs whose disambiguation hinges on facts crossing a call
//! boundary. This family fills that gap: every member funnels its
//! pointer arithmetic through helper functions (bounds-check helpers,
//! chained helpers, recursive partitions), so the intraprocedural
//! engine must answer *may-alias* for the interesting pairs while
//! `Contextuality::Summaries` (`sraa eval --interproc`) proves them
//! no-alias. The gap between the two modes is exactly the summary
//! layer's win, which makes these workloads the tracked corpus for the
//! interprocedural rows of `BENCH_scalability.json`.
//!
//! Three archetypes rotate through the suite:
//!
//! * **bounds** — an `advance(p, k)`-style helper returns `p + k` under a
//!   `k > 0` guard; callers store through the result and through `p`
//!   (the classic helper-function bounds check);
//! * **chained** — helpers calling helpers (`step` → `advance`), so a
//!   caller's fact needs two summary hops, exercising the bottom-up
//!   propagation order;
//! * **partition** — a recursive pointer partition (`part(lo + 1,
//!   n - 1)`), exercising the per-SCC fixpoint.
//!
//! All programs are deterministic, compile under `sraa-minic`, and run
//! trap-free under the IR interpreter (every access stays in bounds), so
//! the dynamic-soundness property tests can execute them.

use crate::Workload;
use std::fmt::Write;

/// Size of every array a workload touches; all helper-derived pointers
/// stay strictly inside it.
const N: usize = 32;

/// Generates the `n`-program call-heavy suite. Program `k` replicates
/// its archetype's caller `1 + k / 3` times, so sizes grow linearly.
pub fn call_suite(n: usize) -> Vec<Workload> {
    (0..n)
        .map(|k| {
            let replicas = 1 + k / 3;
            match k % 3 {
                0 => bounds_workload(k, replicas),
                1 => chained_workload(k, replicas),
                _ => partition_workload(k, replicas),
            }
        })
        .collect()
}

fn header(out: &mut String) {
    // The shared helper set: summaries are per function, so every
    // caller of `advance` inherits `p < advance(p, k)` from one solve.
    let _ = writeln!(out, "int* advance(int* p, int k) {{");
    let _ = writeln!(out, "    if (k > 0) {{ return p + k; }}");
    let _ = writeln!(out, "    return p + 1;");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);
    let _ = writeln!(out, "int* step(int* p) {{");
    let _ = writeln!(out, "    return advance(p, 1);");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);
    let _ = writeln!(out, "int* part(int* lo, int n) {{");
    let _ = writeln!(out, "    if (n <= 0) {{ return lo + 1; }}");
    let _ = writeln!(out, "    return part(lo + 1, n - 1);");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);
    let _ = writeln!(out, "int next(int i) {{");
    let _ = writeln!(out, "    return i + 1;");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);
}

/// Helper-function bounds check: the caller indexes through the helper's
/// result while also writing through the base pointer.
fn bounds_workload(k: usize, replicas: usize) -> Workload {
    let mut out = String::new();
    header(&mut out);
    let mut callers = Vec::new();
    for r in 0..replicas {
        let name = format!("bounds_{r}");
        let _ = writeln!(out, "int {name}(int* v, int n) {{");
        let _ = writeln!(out, "    int acc = 0;");
        let _ = writeln!(out, "    for (int i = 1; i + 4 < n; i++) {{");
        let _ = writeln!(out, "        int* q = advance(v, i);");
        let _ = writeln!(out, "        *q = i;");
        let _ = writeln!(out, "        *v = acc;");
        let _ = writeln!(out, "        acc += *q + next(i);");
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "    return acc;");
        let _ = writeln!(out, "}}");
        let _ = writeln!(out);
        callers.push(name);
    }
    finish(out, &callers, format!("calls{k:03}_bounds"))
}

/// Chained helpers: the caller's fact needs `step`'s summary, which
/// itself needs `advance`'s — two bottom-up hops.
fn chained_workload(k: usize, replicas: usize) -> Workload {
    let mut out = String::new();
    header(&mut out);
    let mut callers = Vec::new();
    for r in 0..replicas {
        let name = format!("chained_{r}");
        let _ = writeln!(out, "int {name}(int* v, int n) {{");
        let _ = writeln!(out, "    int acc = 0;");
        let _ = writeln!(out, "    int* q1 = step(v);");
        let _ = writeln!(out, "    int* q2 = step(q1);");
        let _ = writeln!(out, "    int* q3 = step(q2);");
        let _ = writeln!(out, "    *v = n;");
        let _ = writeln!(out, "    *q1 = n + 1;");
        let _ = writeln!(out, "    *q2 = n + 2;");
        let _ = writeln!(out, "    *q3 = n + 3;");
        let _ = writeln!(out, "    acc = *v + *q1 + *q2 + *q3;");
        let _ = writeln!(out, "    return acc;");
        let _ = writeln!(out, "}}");
        let _ = writeln!(out);
        callers.push(name);
    }
    finish(out, &callers, format!("calls{k:03}_chained"))
}

/// Recursive partition: the helper's summary needs the per-SCC fixpoint
/// (it reads its own summary at the recursive call site).
fn partition_workload(k: usize, replicas: usize) -> Workload {
    let mut out = String::new();
    header(&mut out);
    let mut callers = Vec::new();
    for r in 0..replicas {
        let name = format!("partition_{r}");
        let _ = writeln!(out, "int {name}(int* v, int n) {{");
        let _ = writeln!(out, "    int* mid = part(v, n / 2);");
        let _ = writeln!(out, "    int acc = 0;");
        let _ = writeln!(out, "    *v = n;");
        let _ = writeln!(out, "    *mid = n + 1;");
        let _ = writeln!(out, "    acc = *v + *mid;");
        let _ = writeln!(out, "    int* hi = part(mid, n / 4);");
        let _ = writeln!(out, "    *hi = acc;");
        let _ = writeln!(out, "    return acc + *hi;");
        let _ = writeln!(out, "}}");
        let _ = writeln!(out);
        callers.push(name);
    }
    finish(out, &callers, format!("calls{k:03}_partition"))
}

fn finish(mut out: String, callers: &[String], name: String) -> Workload {
    let _ = writeln!(out, "int main() {{");
    let _ = writeln!(out, "    int a[{N}];");
    let _ = writeln!(out, "    for (int i = 0; i < {N}; i++) a[i] = i;");
    let _ = writeln!(out, "    int acc = 0;");
    for c in callers {
        // n = 16: every helper-derived pointer stays well inside a[32]
        // (advance caps at v + 15, part at v + 17).
        let _ = writeln!(out, "    acc += {c}(a, 16);");
    }
    let _ = writeln!(out, "    return acc % 256;");
    let _ = writeln!(out, "}}");
    Workload { name, source: out }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic_with_unique_names() {
        let a = call_suite(9);
        let b = call_suite(9);
        assert_eq!(a, b);
        let names: std::collections::HashSet<_> = a.iter().map(|w| &w.name).collect();
        assert_eq!(names.len(), 9);
        // All three archetypes appear.
        for tag in ["bounds", "chained", "partition"] {
            assert!(a.iter().any(|w| w.name.ends_with(tag)), "missing {tag}");
        }
    }

    #[test]
    fn all_members_compile_and_run_trap_free() {
        for w in call_suite(9) {
            let m = sraa_minic::compile(&w.source)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", w.name, w.source));
            let mut interp = sraa_ir::Interpreter::new(&m).with_step_limit(5_000_000);
            interp
                .run("main", &[])
                .unwrap_or_else(|e| panic!("{} must not trap: {e:?}\n{}", w.name, w.source));
        }
    }

    #[test]
    fn sizes_grow_with_the_index() {
        let ws = call_suite(12);
        assert!(ws[11].source.len() > ws[2].source.len());
    }
}
