//! Classic scalar optimisation passes over the IR.
//!
//! These are substrate passes, not part of the paper's analysis pipeline —
//! LLVM runs its own simplifications before the paper's passes, and these
//! give the workspace the same vocabulary. They are deliberately *not*
//! wired into [`DisambiguationEngine::run`]: the workload calibration
//! in `sraa-synth` targets un-optimised input (see DESIGN.md), and keeping
//! the passes explicit lets the ablation harness measure their effect.
//!
//! [`DisambiguationEngine::run`]: ../../sraa_core/engine/struct.DisambiguationEngine.html

pub mod dce;
pub mod fold;

pub use dce::eliminate_dead_code;
pub use fold::fold_constants;
