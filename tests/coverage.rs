//! Additional cross-cutting behaviour tests: frontend corner cases,
//! interpreter semantics, range refinement on the new syntax forms, and
//! query-surface edge cases.

use sraa_alias::{AliasAnalysis, AliasResult, BasicAliasAnalysis, StrictInequalityAa};
use sraa_ir::{InstKind, Interpreter, Type};

fn run(src: &str) -> i64 {
    let m = sraa_minic::compile(src).unwrap();
    Interpreter::new(&m).run("main", &[]).unwrap().result.unwrap()
}

#[test]
fn pointer_difference_is_element_scaled() {
    assert_eq!(run("int main() { int a[10]; int* p = &a[2]; int* q = &a[7]; return q - p; }"), 5);
}

#[test]
fn pointer_comparisons_follow_layout() {
    assert_eq!(
        run(r#"
        int main() {
            int a[10];
            int* p = &a[2];
            int* q = &a[7];
            int lt = p < q;
            int le = q <= q;
            int gt = q > p;
            return lt * 100 + le * 10 + gt;
        }"#),
        111
    );
}

#[test]
fn negative_indices_via_pointer_midpoint() {
    assert_eq!(
        run(r#"
        int main() {
            int a[10];
            a[1] = 77;
            int* mid = &a[5];
            return mid[-4];
        }"#),
        77
    );
}

#[test]
fn deep_recursion_hits_the_stack_guard() {
    let m = sraa_minic::compile("int f(int n) { return f(n + 1); } int main() { return f(0); }")
        .unwrap();
    let err = Interpreter::new(&m).run("main", &[]).unwrap_err();
    assert!(matches!(err, sraa_ir::ExecError::StackOverflow | sraa_ir::ExecError::StepLimit));
}

#[test]
fn modulo_and_division_semantics_match_rust() {
    assert_eq!(run("int main() { return (0 - 7) % 3; }"), -7 % 3);
    assert_eq!(run("int main() { return (0 - 7) / 2; }"), -7 / 2);
}

#[test]
fn range_refines_do_while_counters() {
    // In `do { i-- } while (i > 0)`, the σ on the back edge bounds i.
    let mut m = sraa_minic::compile(
        r#"
        int f(int n) {
            int i = n;
            do { i--; } while (i > 0);
            return i;
        }
        int main() { return f(10); }
        "#,
    )
    .unwrap();
    let (ranges, _) = sraa_essa::transform_module(&mut m);
    let fid = m.function_by_name("f").unwrap();
    let f = m.function(fid);
    // The returned value flows from the σ-copy on the false edge of
    // (i > 0): its range must have an upper bound of 0.
    let mut ret_val = None;
    for b in f.block_ids() {
        if let Some(t) = f.terminator(b) {
            if let InstKind::Ret(Some(v)) = f.inst(t).kind {
                ret_val = Some(v);
            }
        }
    }
    let iv = ranges.range(fid, ret_val.unwrap());
    assert_eq!(iv.hi(), sraa_range::Bound::Fin(0), "¬(i > 0) pins the exit value at ≤ 0: {iv}");
}

#[test]
fn ternary_derived_pointers_are_analysable() {
    // LT sees through the φ the ternary introduces: both arms are + of
    // positive constants, so v < p holds on both and survives rule 4.
    let mut m = sraa_minic::compile(
        r#"
        int f(int* v, int c) {
            int* p = c < 0 ? v + 1 : v + 2;
            *p = 5;
            *v = 7;
            return *p;
        }
        int main() { int a[4]; return f(a, -1); }
        "#,
    )
    .unwrap();
    let lt = StrictInequalityAa::new(&mut m);
    let fid = m.function_by_name("f").unwrap();
    let f = m.function(fid);
    let mut stores = Vec::new();
    for b in f.block_ids() {
        for (_, d) in f.block_insts(b) {
            if let InstKind::Store { ptr, .. } = d.kind {
                stores.push(ptr);
            }
        }
    }
    assert_eq!(
        lt.alias(&m, fid, stores[0], stores[1]),
        AliasResult::NoAlias,
        "v < φ(v+1, v+2) by rule 2 + rule 4"
    );
}

#[test]
fn cross_function_relation_is_queryable() {
    let mut m = sraa_minic::compile(
        r#"
        int g(int x) { return x; }
        int main() {
            int a = input();
            int b = a + 1;
            return g(b);
        }
        "#,
    )
    .unwrap();
    let lt = StrictInequalityAa::new(&mut m);
    let main_id = m.function_by_name("main").unwrap();
    let g_id = m.function_by_name("g").unwrap();
    // Find `a` (the Opaque) in main and x (the param) in g.
    let main_f = m.function(main_id);
    let mut a = None;
    for bb in main_f.block_ids() {
        for (v, d) in main_f.block_insts(bb) {
            if matches!(d.kind, InstKind::Opaque) {
                a = Some(v);
            }
        }
    }
    let x = m.function(g_id).param_value(0);
    assert!(
        lt.engine().less_than_cross(main_id, a.unwrap(), g_id, x),
        "caller's a flows into LT(g::x) through the pseudo-φ (a < a+1 = arg)"
    );
}

#[test]
fn frontend_error_paths_are_reported() {
    for (src, needle) in [
        ("int main() { int* p; return p + q; }", "unknown variable"),
        ("int main() { return *5; }", "dereference"),
        ("int f(int x) { x(); return 0; }", "unknown function"),
        ("int main() { int a[2]; a = 3; return 0; }", "cannot assign to array"),
        ("int main() { return &0; }", "not assignable"),
        ("void f() { return 3; }", "void function returns"),
        ("int main() { continue; }", "continue outside loop"),
        ("int f(int* p) { return p * 2; }", "invalid operands"),
        ("int main() { int x = malloc(4); return x; }", "malloc"),
    ] {
        let e = sraa_minic::compile(src).unwrap_err();
        assert!(
            e.message.contains(needle),
            "`{src}` should fail with `{needle}`, got `{}`",
            e.message
        );
    }
}

#[test]
fn basic_aa_handles_copies_through_essa() {
    // After the transform, σ-copies wrap pointer values; BA's
    // decomposition must see through them.
    let mut m = sraa_minic::compile(
        r#"
        int f(int* p, int* q, int n) {
            int a[4];
            if (p < q) { a[0] = *p; }
            return a[0];
        }
        int main() { int x[2]; int y[2]; return f(x, y, 1); }
        "#,
    )
    .unwrap();
    let _lt = StrictInequalityAa::new(&mut m); // puts module in e-SSA form
    let ba = BasicAliasAnalysis::new(&m);
    let fid = m.function_by_name("f").unwrap();
    let f = m.function(fid);
    let mut ptrs = Vec::new();
    for b in f.block_ids() {
        for (_, d) in f.block_insts(b) {
            match d.kind {
                InstKind::Load { ptr } => ptrs.push(ptr),
                InstKind::Store { ptr, .. } => ptrs.push(ptr),
                _ => {}
            }
        }
    }
    // a[0] store vs *p load: non-escaping local vs parameter, even though
    // *p happens through a σ-copy of p.
    let verdicts: Vec<AliasResult> = ptrs
        .iter()
        .enumerate()
        .flat_map(|(i, &x)| ptrs.iter().skip(i + 1).map(move |&y| (x, y)))
        .map(|(x, y)| ba.alias(&m, fid, x, y))
        .collect();
    assert!(
        verdicts.contains(&AliasResult::NoAlias),
        "the local array and the parameter must be separated: {verdicts:?}"
    );
}

#[test]
fn opaque_pointers_are_dereferenceable_and_clustered() {
    // All inptr() values land in one 64-cell external buffer: they are
    // dereferenceable and close together (so may truly alias), and the
    // analyses answer MayAlias.
    let m = sraa_minic::compile(
        r#"
        int main() {
            int* a = inptr();
            int* b = inptr();
            a[0] = 5;
            int d = a - b;
            int near = d < 64 && 0 - 64 < d;
            return near;
        }
        "#,
    )
    .unwrap();
    let t = Interpreter::new(&m).run("main", &[]).unwrap();
    assert_eq!(t.result, Some(1), "opaque pointers cluster in one buffer");
    let _ = Type::Ptr(1);
}
