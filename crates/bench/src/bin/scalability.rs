//! §4.2 scalability statistics:
//!
//! * worklist pops per constraint (paper: ≈ 2.12 over SPEC + test-suite);
//! * solve time vs number of constraints (paper: R² = 0.988);
//! * the LT-set size distribution (paper: > 95% of sets have ≤ 2 elements).

use sraa_bench::{r_squared, suite_n};
use std::time::Instant;

fn main() {
    let mut ws = sraa_synth::test_suite(suite_n());
    ws.extend(sraa_synth::spec_all());

    let mut total_constraints = 0u64;
    let mut total_pops = 0u64;
    let mut xs = Vec::new(); // constraints
    let mut ys = Vec::new(); // solve+pipeline time (µs)
    let mut size_hist: std::collections::BTreeMap<usize, usize> = Default::default();

    for w in &ws {
        // The paper's §4.2 question is specifically about *constraint
        // solving*: prepare the system outside the timer, then time the
        // worklist solver alone.
        let mut m = sraa_minic::compile(&w.source).expect("workloads compile");
        let (ranges, _) = sraa_essa::transform_module(&mut m);
        let sys = sraa_core::generate(&m, &ranges, Default::default());
        // Best of three runs to suppress timer noise on tiny systems.
        let mut dt = f64::INFINITY;
        let mut solution = None;
        for _ in 0..3 {
            let t0 = Instant::now();
            let sol = sraa_core::solve(&sys.constraints, sys.num_vars);
            dt = dt.min(t0.elapsed().as_secs_f64() * 1e6);
            solution = Some(sol);
        }
        let solution = solution.expect("ran at least once");
        let stats = &solution.stats;
        total_constraints += stats.constraints as u64;
        total_pops += stats.pops;
        xs.push(stats.constraints as f64);
        ys.push(dt);
        for (sz, n) in solution.size_histogram() {
            *size_hist.entry(sz).or_default() += n;
        }
    }

    println!("benchmarks analysed      : {}", ws.len());
    println!("total constraints        : {total_constraints}");
    println!("total worklist pops      : {total_pops}");
    println!(
        "pops per constraint      : {:.2}   (paper: 2.12)",
        total_pops as f64 / total_constraints.max(1) as f64
    );
    println!("R²(time, #constraints)   : {:.4}  (paper: 0.988)", r_squared(&xs, &ys));

    let total_vars: usize = size_hist.values().sum();
    let small: usize = size_hist.iter().filter(|(s, _)| **s <= 2).map(|(_, n)| n).sum();
    println!(
        "LT sets with ≤ 2 elements: {:.1}%  (paper: >95%)",
        small as f64 / total_vars.max(1) as f64 * 100.0
    );
    println!();
    println!("LT set size histogram (size: count):");
    for (sz, n) in size_hist.iter().take(12) {
        println!("  {sz:>3}: {n}");
    }
}
