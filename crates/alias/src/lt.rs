//! The paper's analysis packaged as an [`AliasAnalysis`] — **LT** in the
//! evaluation's tables and figures.

use crate::{AliasAnalysis, AliasResult};
use sraa_core::{GenConfig, StrictInequalityAnalysis};
use sraa_ir::{FuncId, Module, Value};

/// Strict-inequality alias analysis (the paper's `sraa` LLVM pass).
///
/// Construction runs the full pipeline — e-SSA conversion, range analysis,
/// constraint generation and solving — which *mutates* the module into
/// e-SSA form. Build it first and hand the transformed module to the other
/// analyses so every method answers queries about the same program.
#[derive(Clone, Debug)]
pub struct StrictInequalityAa {
    analysis: StrictInequalityAnalysis,
}

impl StrictInequalityAa {
    /// Runs the pipeline on `module` (converting it to e-SSA form).
    pub fn new(module: &mut Module) -> Self {
        Self { analysis: StrictInequalityAnalysis::run(module) }
    }

    /// Runs the pipeline with an explicit configuration.
    pub fn with_config(module: &mut Module, cfg: GenConfig) -> Self {
        Self { analysis: StrictInequalityAnalysis::run_with(module, cfg) }
    }

    /// Wraps an existing analysis result.
    pub fn from_analysis(analysis: StrictInequalityAnalysis) -> Self {
        Self { analysis }
    }

    /// Access to the underlying less-than relation.
    pub fn analysis(&self) -> &StrictInequalityAnalysis {
        &self.analysis
    }
}

impl AliasAnalysis for StrictInequalityAa {
    fn name(&self) -> String {
        "LT".to_string()
    }

    fn alias(&self, module: &Module, func: FuncId, p1: Value, p2: Value) -> AliasResult {
        if p1 == p2 {
            return AliasResult::MustAlias;
        }
        let f = module.function(func);
        if self.analysis.no_alias(f, func, p1, p2) {
            AliasResult::NoAlias
        } else {
            AliasResult::MayAlias
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraa_ir::InstKind;

    #[test]
    fn lt_disambiguates_the_motivating_loop_and_ba_does_not() {
        let mut m = sraa_minic::compile(
            r#"
            void f(int* v, int N) {
                for (int i = 0, j = N; i < j; i++, j--) v[i] = v[j];
            }
            "#,
        )
        .unwrap();
        let lt = StrictInequalityAa::new(&mut m);
        let ba = crate::BasicAliasAnalysis::new(&m);
        let fid = m.function_by_name("f").unwrap();
        let f = m.function(fid);
        let mut ptrs = Vec::new();
        for b in f.block_ids() {
            for (_, d) in f.block_insts(b) {
                match &d.kind {
                    InstKind::Load { ptr } => ptrs.push(*ptr),
                    InstKind::Store { ptr, .. } => ptrs.push(*ptr),
                    _ => {}
                }
            }
        }
        assert_eq!(lt.alias(&m, fid, ptrs[0], ptrs[1]), AliasResult::NoAlias);
        assert_eq!(ba.alias(&m, fid, ptrs[0], ptrs[1]), AliasResult::MayAlias);
    }
}
