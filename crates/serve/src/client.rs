//! The `sraa query` client: one connection, framed request/reply, and
//! streamed `pairs` consumption.

use crate::protocol::{self, FrameError, Json, JsonError};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Client-side failure: transport, framing, or a server that stopped
/// mid-stream. A *typed error reply* from the server is not a
/// `ClientError` — it comes back as an ordinary [`Json`] with
/// `"ok": false`, so callers can read the code and detail.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, EOF mid-reply).
    Io(std::io::Error),
    /// The server sent a malformed frame.
    Frame(FrameError),
    /// The server sent a frame whose payload is not valid JSON.
    Json(JsonError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Frame(e) => write!(f, "malformed reply frame: {e}"),
            ClientError::Json(e) => write!(f, "malformed reply payload: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

enum Stream {
    #[cfg(unix)]
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

/// A connected client. One request/reply (or request/stream) at a time.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Box<dyn Write + Send>,
}

/// Replies longer than this are refused client-side (an `eval` report is
/// the largest legitimate reply; this cap matches the server's).
const MAX_REPLY: usize = protocol::MAX_FRAME;

impl Client {
    /// Connects over a Unix socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        let writer = Box::new(stream.try_clone()?);
        Ok(Client { reader: BufReader::new(Stream::Unix(stream)), writer })
    }

    /// Connects over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        let writer = Box::new(stream.try_clone()?);
        Ok(Client { reader: BufReader::new(Stream::Tcp(stream)), writer })
    }

    /// Sends one request and reads one reply frame. The reply may be a
    /// typed error object (`"ok": false`) — that is a successful round
    /// trip at this layer.
    pub fn request(&mut self, req: &Json) -> Result<Json, ClientError> {
        self.send(req)?;
        self.read_reply()
    }

    /// Sends one request and consumes a reply *stream*: every frame is
    /// handed to `on_frame` until a frame carries a `done` field (the
    /// final frame, also passed to `on_frame`) or is a typed error.
    /// Returns the final frame.
    pub fn request_streamed(
        &mut self,
        req: &Json,
        mut on_frame: impl FnMut(&Json),
    ) -> Result<Json, ClientError> {
        self.send(req)?;
        loop {
            let frame = self.read_reply()?;
            on_frame(&frame);
            if frame.get("done").is_some() || !frame.is_ok() {
                return Ok(frame);
            }
        }
    }

    fn send(&mut self, req: &Json) -> Result<(), ClientError> {
        self.writer.write_all(protocol::encode_frame(&req.render()).as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_reply(&mut self) -> Result<Json, ClientError> {
        let mut line = Vec::new();
        loop {
            let before = line.len();
            match self.reader.read_until(b'\n', &mut line) {
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-reply",
                    )))
                }
                Ok(_) if line.last() == Some(&b'\n') => break,
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if line.len() == before {
                        return Err(ClientError::Io(e));
                    }
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
            if line.len() > MAX_REPLY + 64 {
                return Err(ClientError::Frame(FrameError::Oversized));
            }
        }
        let text =
            std::str::from_utf8(&line).map_err(|_| ClientError::Frame(FrameError::BadHeader))?;
        let payload = protocol::decode_frame(text, MAX_REPLY).map_err(ClientError::Frame)?;
        protocol::parse(payload).map_err(ClientError::Json)
    }
}
