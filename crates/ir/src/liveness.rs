//! SSA liveness analysis.
//!
//! Classic backward dataflow over the CFG with the standard SSA φ
//! convention: a φ's operands are live-out of the corresponding
//! predecessors (not live-in of the φ's block), and a φ's result is live-in
//! of its block. The paper's Corollary 3.10 ("if `xi ∈ LT(xj)` and both are
//! simultaneously alive then `xi < xj`") is phrased in terms of exactly
//! this notion of liveness, and the property-based tests use it.

use crate::bitset::DenseBitSet;
use crate::cfg::Cfg;
use crate::function::Function;
use crate::ids::{BlockId, Value};
use crate::inst::InstKind;

/// Live-in / live-out sets per block.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<DenseBitSet>,
    live_out: Vec<DenseBitSet>,
}

impl Liveness {
    /// Computes liveness for `func` with the given `cfg`.
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        let nb = func.num_blocks();
        let nv = func.num_insts();
        let mut live_in = vec![DenseBitSet::new(nv); nb];
        let mut live_out = vec![DenseBitSet::new(nv); nb];

        // Per-block upward-exposed uses and defs (φs handled separately).
        let mut gen = vec![DenseBitSet::new(nv); nb];
        let mut def = vec![DenseBitSet::new(nv); nb];
        // φ uses contribute to the *predecessor's* live-out.
        let mut phi_out = vec![DenseBitSet::new(nv); nb];

        for b in func.block_ids() {
            for (v, data) in func.block_insts(b) {
                match &data.kind {
                    InstKind::Phi { incomings } => {
                        def[b.index()].insert(v.index());
                        for (pred, arg) in incomings {
                            phi_out[pred.index()].insert(arg.index());
                        }
                    }
                    kind => {
                        kind.for_each_operand(|u| {
                            if !def[b.index()].contains(u.index()) {
                                gen[b.index()].insert(u.index());
                            }
                        });
                        if data.has_result() {
                            def[b.index()].insert(v.index());
                        }
                    }
                }
            }
        }

        // Iterate to fixpoint in post-order (backward analysis converges
        // fastest visiting successors first).
        let order = cfg.postorder().to_vec();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                // live_out[b] = phi_out[b] ∪ ⋃_{s ∈ succ(b)} live_in[s]
                let mut out = phi_out[b.index()].clone();
                for &s in cfg.succs(b) {
                    out.union_with(&live_in[s.index()]);
                }
                // live_in[b] = gen[b] ∪ (live_out[b] \ def[b]) ∪ φ-defs?
                // φ results are defined *in* b, so they are not live-in.
                let mut inn = out.clone();
                inn.difference_with(&def[b.index()]);
                inn.union_with(&gen[b.index()]);
                if out != live_out[b.index()] || inn != live_in[b.index()] {
                    live_out[b.index()] = out;
                    live_in[b.index()] = inn;
                    changed = true;
                }
            }
        }

        Self { live_in, live_out }
    }

    /// Values live at the entry of `b`.
    pub fn live_in(&self, b: BlockId) -> &DenseBitSet {
        &self.live_in[b.index()]
    }

    /// Values live at the exit of `b`.
    pub fn live_out(&self, b: BlockId) -> &DenseBitSet {
        &self.live_out[b.index()]
    }

    /// Whether two values are simultaneously alive anywhere in `func`.
    ///
    /// In strict SSA two interfering values are simultaneously alive iff
    /// one is alive at the definition point of the other (Budimlić et al.,
    /// cited by the paper's Corollary 3.10), which this method checks.
    pub fn interfere(&self, func: &Function, positions: &[u32], a: Value, b: Value) -> bool {
        self.live_at_def(func, positions, a, b) || self.live_at_def(func, positions, b, a)
    }

    /// Whether `v` is alive just after the definition point of `at`.
    ///
    /// This is the notion of simultaneity in the paper's Corollary 3.10:
    /// two SSA values interfere iff one is alive at the definition point
    /// of the other; the dynamic-soundness property tests check the
    /// less-than and no-alias claims at exactly these points.
    pub fn live_at_def(&self, func: &Function, positions: &[u32], v: Value, at: Value) -> bool {
        let Some(bb) = func.inst(at).block else { return false };
        // Alive after `at` ⇔ live-out of bb, or used later in bb.
        if self.live_out[bb.index()].contains(v.index()) {
            // Live-out and defined before the end: alive at def of `at` if
            // v's definition reaches there; in SSA it is enough that v is
            // live-out and defined at or before `at`'s position (same
            // block) or defined elsewhere.
            match func.inst(v).block {
                Some(vb) if vb == bb => return positions[v.index()] <= positions[at.index()],
                _ => return true,
            }
        }
        // Otherwise: used after `at` within bb?
        let block = func.block(bb);
        let at_pos = positions[at.index()] as usize;
        for &w in block.insts.iter().skip(at_pos + 1) {
            let mut used = false;
            match &func.inst(w).kind {
                InstKind::Phi { .. } => {}
                kind => kind.for_each_operand(|u| used |= u == v),
            }
            if used {
                // v must also be defined at or before `at`.
                return match func.inst(v).block {
                    Some(vb) if vb == bb => positions[v.index()] <= positions[at.index()],
                    _ => true,
                };
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Pred};
    use crate::types::Type;

    fn loop_fn() -> (Function, BlockId, BlockId, BlockId, [Value; 4]) {
        let mut f = Function::new("t", vec![("n", Type::Int)], Some(Type::Int));
        let mut b = FunctionBuilder::new(&mut f);
        let entry = b.current_block();
        let header = b.create_block();
        let exit = b.create_block();
        let n = b.param(0);
        let zero = b.iconst(0);
        let one = b.iconst(1);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(Type::Int);
        let i2 = b.binary(BinOp::Add, i, one);
        let c = b.cmp(Pred::Lt, i2, n);
        b.br(c, header, exit);
        b.set_phi_incomings(i, vec![(entry, zero), (header, i2)]);
        b.switch_to(exit);
        b.ret(Some(i2));
        b.finish();
        (f, entry, header, exit, [n, one, i, i2])
    }

    #[test]
    fn loop_carried_values_are_live_around_the_loop() {
        let (f, entry, header, exit, [n, one, _i, i2]) = loop_fn();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        // n and one are live into the header from entry.
        assert!(lv.live_out(entry).contains(n.index()));
        assert!(lv.live_out(entry).contains(one.index()));
        assert!(lv.live_in(header).contains(n.index()));
        // i2 is live-out of header (phi back edge + exit use).
        assert!(lv.live_out(header).contains(i2.index()));
        assert!(lv.live_in(exit).contains(i2.index()));
        // n is dead after the header.
        assert!(!lv.live_in(exit).contains(n.index()));
    }

    #[test]
    fn phi_def_is_not_live_in() {
        let (f, _, header, _, [_, _, i, _]) = loop_fn();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(
            !lv.live_in(header).contains(i.index()),
            "φ results are defined in their block, not live-in"
        );
    }

    #[test]
    fn interference_within_a_block() {
        let mut f = Function::new("t", Vec::<(&str, Type)>::new(), None);
        let mut b = FunctionBuilder::new(&mut f);
        let x = b.opaque(Type::Int);
        let y = b.opaque(Type::Int);
        let _z = b.binary(BinOp::Add, x, y);
        let w = b.opaque(Type::Int);
        b.ret(None);
        b.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        let pos = f.positions();
        assert!(lv.interfere(&f, &pos, x, y), "x and y are both live before the add");
        assert!(!lv.interfere(&f, &pos, x, w), "x dies at the add, before w is defined");
    }
}
