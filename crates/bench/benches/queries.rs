//! Alias-query latency: how expensive is one `alias(p1, p2)` call for each
//! analysis once its data structures are built? LLVM cares because
//! `aa-eval` issues millions of queries (186M for the paper's gcc run).

use criterion::{criterion_group, criterion_main, Criterion};
use sraa_alias::{AaEval, AliasAnalysis, AndersenAnalysis, BasicAliasAnalysis, StrictInequalityAa};

fn bench_query_latency(c: &mut Criterion) {
    let w = sraa_synth::spec_generate_by_name("gobmk").expect("known profile");
    let mut m = sraa_minic::compile(&w.source).unwrap();
    let lt = StrictInequalityAa::new(&mut m);
    let ba = BasicAliasAnalysis::new(&m);
    let cf = AndersenAnalysis::new(&m);

    let (fid, _) = m.functions().nth(2).expect("gobmk has many functions");
    let ptrs = AaEval::pointer_values(&m, fid);
    assert!(ptrs.len() >= 8);

    let mut group = c.benchmark_group("query");
    let pairs: Vec<_> = (0..ptrs.len().min(32))
        .flat_map(|i| (i + 1..ptrs.len().min(32)).map(move |j| (i, j)))
        .collect();
    group.bench_function("BA", |b| {
        b.iter(|| {
            let mut n = 0u32;
            for &(i, j) in &pairs {
                n += (ba.alias(&m, fid, ptrs[i], ptrs[j]) == sraa_alias::AliasResult::NoAlias)
                    as u32;
            }
            std::hint::black_box(n)
        })
    });
    group.bench_function("LT", |b| {
        b.iter(|| {
            let mut n = 0u32;
            for &(i, j) in &pairs {
                n += (lt.alias(&m, fid, ptrs[i], ptrs[j]) == sraa_alias::AliasResult::NoAlias)
                    as u32;
            }
            std::hint::black_box(n)
        })
    });
    group.bench_function("CF", |b| {
        b.iter(|| {
            let mut n = 0u32;
            for &(i, j) in &pairs {
                n += (cf.alias(&m, fid, ptrs[i], ptrs[j]) == sraa_alias::AliasResult::NoAlias)
                    as u32;
            }
            std::hint::black_box(n)
        })
    });
    group.finish();
}

fn bench_analysis_construction(c: &mut Criterion) {
    let w = sraa_synth::spec_generate_by_name("milc").expect("known profile");
    let module = sraa_minic::compile(&w.source).unwrap();
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    group.bench_function("BA_milc", |b| {
        b.iter(|| std::hint::black_box(BasicAliasAnalysis::new(&module)))
    });
    group.bench_function("CF_milc", |b| {
        b.iter(|| std::hint::black_box(AndersenAnalysis::new(&module)))
    });
    group.bench_function("LT_milc", |b| {
        b.iter_batched(
            || module.clone(),
            |mut m| std::hint::black_box(StrictInequalityAa::new(&mut m)),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The paper §5: "we chose to compute a transitive closure of less-than
/// relations, whereas ABCD works on demand". Measure both strategies over
/// the same constraint system: closure pays once, on-demand pays per query.
fn bench_closure_vs_on_demand(c: &mut Criterion) {
    let w = sraa_synth::spec_generate_by_name("milc").expect("known profile");
    let mut m = sraa_minic::compile(&w.source).unwrap();
    let (ranges, _) = sraa_essa::transform_module(&mut m);
    let sys = sraa_core::generate(&m, &ranges, Default::default());

    let mut group = c.benchmark_group("lt-strategy");
    group.sample_size(20);
    group.bench_function("closure/solve", |b| {
        b.iter(|| std::hint::black_box(sraa_core::solve(&sys.constraints, sys.num_vars).stats.pops))
    });
    // Query workload: a deterministic sample of pairs.
    let n = sys.num_vars;
    let pairs: Vec<(sraa_core::VarId, sraa_core::VarId)> = (0..2000)
        .map(|i| {
            (
                sraa_core::VarId::from_index((i * 7919) % n),
                sraa_core::VarId::from_index((i * 104729) % n),
            )
        })
        .collect();
    let solution = sraa_core::solve(&sys.constraints, sys.num_vars);
    group.bench_function("closure/2000_queries", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for &(x, y) in &pairs {
                hits += solution.less_than(x, y) as u32;
            }
            std::hint::black_box(hits)
        })
    });
    group.bench_function("on_demand/2000_queries_cold", |b| {
        b.iter(|| {
            let mut prover = sraa_core::OnDemandProver::new(&sys);
            let mut hits = 0u32;
            for &(x, y) in &pairs {
                hits += prover.less_than(x, y) as u32;
            }
            std::hint::black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_query_latency,
    bench_analysis_construction,
    bench_closure_vs_on_demand
);
criterion_main!(benches);
