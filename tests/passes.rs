//! Integration tests for the IR optimisation passes on realistic
//! (frontend-compiled) programs.

use sraa_ir::passes::{eliminate_dead_code, fold_constants};
use sraa_ir::{verify, FuncId, Interpreter};

#[test]
fn fold_preserves_program_semantics() {
    let src = r#"
        int main() {
            int a[8];
            int base = 2;
            int i = base * 3;
            a[i] = 40 + base;
            int zero = i - i;
            return a[i] + zero;
        }
    "#;
    let mut m = sraa_minic::compile(src).unwrap();
    let before = Interpreter::new(&m).run("main", &[]).unwrap().result;
    let mut folded = 0;
    for fid in 0..m.num_functions() {
        folded += fold_constants(m.function_mut(FuncId::from_index(fid)));
    }
    assert!(folded > 0);
    verify(&m).unwrap();
    let after = Interpreter::new(&m).run("main", &[]).unwrap().result;
    assert_eq!(before, after);
    assert_eq!(after, Some(42));
}

#[test]
fn dce_keeps_stores_calls_and_params() {
    let src = r#"
        int helper(int x) { return x; }
        int main() {
            int a[2];
            a[0] = 7;
            int unused = 1 + 2;
            helper(3);
            return a[0];
        }
    "#;
    let mut m = sraa_minic::compile(src).unwrap();
    let before = Interpreter::new(&m).run("main", &[]).unwrap();
    let main = m.function_by_name("main").unwrap();
    let removed = eliminate_dead_code(m.function_mut(main));
    assert!(removed >= 1, "the unused addition goes away");
    verify(&m).unwrap();
    let after = Interpreter::new(&m).run("main", &[]).unwrap();
    assert_eq!(before.result, after.result);
    assert!(after.steps < before.steps, "fewer instructions executed");
}

#[test]
fn dce_cleans_unused_sigma_copies() {
    let mut m =
        sraa_minic::compile("int f(int a, int b) { if (a < b) return 1; return 0; }").unwrap();
    let stats = sraa_essa::split_at_branches(&mut m);
    assert_eq!(stats.sigma_copies, 4);
    let fid = m.function_by_name("f").unwrap();
    let removed = eliminate_dead_code(m.function_mut(fid));
    assert!(removed >= 4, "none of the σ-copies have uses here: {removed}");
    verify(&m).unwrap();
}

#[test]
fn fold_then_dce_shrinks_csmith_programs() {
    for seed in 0..5u64 {
        let w = sraa_synth::csmith_generate(sraa_synth::CsmithConfig {
            seed: seed + 900,
            max_ptr_depth: 2,
            num_stmts: 60,
            helpers: 0,
        });
        let mut m = sraa_minic::compile(&w.source).unwrap();
        let before_result = Interpreter::new(&m).run("main", &[]).unwrap().result;
        let before_size = sraa_ir::ModuleStats::compute(&m).instructions;
        let mut changed = 0;
        for fid in 0..m.num_functions() {
            let f = m.function_mut(FuncId::from_index(fid));
            changed += fold_constants(f);
            changed += eliminate_dead_code(f);
        }
        verify(&m).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let after_size = sraa_ir::ModuleStats::compute(&m).instructions;
        let after_result = Interpreter::new(&m).run("main", &[]).unwrap().result;
        assert_eq!(before_result, after_result, "{}", w.name);
        assert!(changed > 0, "{}: the ix pool alone guarantees folds", w.name);
        assert!(after_size <= before_size, "{}", w.name);
    }
}

/// The analyses still work — and stay sound — on optimised programs.
#[test]
fn lt_analysis_on_folded_programs() {
    use sraa_alias::{AliasAnalysis, AliasResult, StrictInequalityAa};
    let mut m = sraa_minic::compile(
        r#"
        void f(int* v, int N) {
            for (int i = 0, j = N; i < j; i++, j--) v[i] = v[j];
        }
        "#,
    )
    .unwrap();
    for fid in 0..m.num_functions() {
        let f = m.function_mut(FuncId::from_index(fid));
        fold_constants(f);
        eliminate_dead_code(f);
    }
    let lt = StrictInequalityAa::new(&mut m);
    let fid = m.function_by_name("f").unwrap();
    let f = m.function(fid);
    let (mut load, mut store) = (None, None);
    for b in f.block_ids() {
        for (_, d) in f.block_insts(b) {
            match d.kind {
                sraa_ir::InstKind::Load { ptr } => load = Some(ptr),
                sraa_ir::InstKind::Store { ptr, .. } => store = Some(ptr),
                _ => {}
            }
        }
    }
    assert_eq!(lt.alias(&m, fid, load.unwrap(), store.unwrap()), AliasResult::NoAlias);
}
