//! The integer interval abstract domain.
//!
//! Classic Cousot & Cousot intervals `[l, u]` with infinite bounds. The
//! paper's Section 3.2 uses a range analysis "à la Cousot" to classify
//! `x1 = x2 + x3` as an addition, a subtraction, or an unknown, based on
//! the sign of the operands' ranges.

use std::fmt;

/// An interval bound: −∞, a finite value, or +∞.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// −∞
    NegInf,
    /// A finite value.
    Fin(i64),
    /// +∞
    PosInf,
}

impl Bound {
    fn as_i128(self) -> Option<i128> {
        match self {
            Bound::Fin(v) => Some(v as i128),
            _ => None,
        }
    }

    fn from_i128_lo(v: i128) -> Bound {
        if v < i64::MIN as i128 {
            Bound::NegInf
        } else if v > i64::MAX as i128 {
            Bound::PosInf
        } else {
            Bound::Fin(v as i64)
        }
    }

    fn from_i128_hi(v: i128) -> Bound {
        Bound::from_i128_lo(v)
    }
}

impl PartialOrd for Bound {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp_key().cmp(&other.cmp_key()))
    }
}

impl Bound {
    fn cmp_key(self) -> i128 {
        match self {
            Bound::NegInf => i128::MIN,
            Bound::Fin(v) => v as i128,
            Bound::PosInf => i128::MAX,
        }
    }
}

/// A (possibly empty) interval of `i64` values.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    lo: Bound,
    hi: Bound,
    empty: bool,
}

impl Interval {
    /// The full interval ⊤ = [−∞, +∞].
    pub const TOP: Interval = Interval { lo: Bound::NegInf, hi: Bound::PosInf, empty: false };

    /// The empty interval ⊥.
    pub const BOTTOM: Interval = Interval { lo: Bound::PosInf, hi: Bound::NegInf, empty: true };

    /// The interval `[lo, hi]`; ⊥ if `lo > hi`.
    pub fn new(lo: Bound, hi: Bound) -> Interval {
        if lo.cmp_key() > hi.cmp_key() {
            Interval::BOTTOM
        } else {
            Interval { lo, hi, empty: false }
        }
    }

    /// The singleton `[c, c]`.
    pub fn constant(c: i64) -> Interval {
        Interval::new(Bound::Fin(c), Bound::Fin(c))
    }

    /// The finite interval `[lo, hi]`.
    pub fn finite(lo: i64, hi: i64) -> Interval {
        Interval::new(Bound::Fin(lo), Bound::Fin(hi))
    }

    /// Lower bound.
    pub fn lo(&self) -> Bound {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> Bound {
        self.hi
    }

    /// Whether this is the empty interval.
    pub fn is_bottom(&self) -> bool {
        self.empty
    }

    /// Whether this is `[−∞, +∞]`.
    pub fn is_top(&self) -> bool {
        !self.empty && self.lo == Bound::NegInf && self.hi == Bound::PosInf
    }

    /// Whether every value in the interval is strictly positive.
    pub fn is_strictly_positive(&self) -> bool {
        !self.empty && self.lo.cmp_key() >= 1
    }

    /// Whether every value in the interval is strictly negative.
    pub fn is_strictly_negative(&self) -> bool {
        !self.empty && self.hi.cmp_key() <= -1
    }

    /// Whether every value is ≥ 0.
    pub fn is_non_negative(&self) -> bool {
        !self.empty && self.lo.cmp_key() >= 0
    }

    /// Whether the interval excludes zero.
    pub fn excludes_zero(&self) -> bool {
        self.empty || self.lo.cmp_key() > 0 || self.hi.cmp_key() < 0
    }

    /// Whether `v` is contained.
    pub fn contains(&self, v: i64) -> bool {
        !self.empty && self.lo.cmp_key() <= v as i128 && (v as i128) <= self.hi.cmp_key()
    }

    /// Least upper bound (interval union hull).
    pub fn join(&self, other: &Interval) -> Interval {
        if self.empty {
            return *other;
        }
        if other.empty {
            return *self;
        }
        Interval::new(
            if self.lo.cmp_key() <= other.lo.cmp_key() { self.lo } else { other.lo },
            if self.hi.cmp_key() >= other.hi.cmp_key() { self.hi } else { other.hi },
        )
    }

    /// Greatest lower bound (intersection).
    pub fn meet(&self, other: &Interval) -> Interval {
        if self.empty || other.empty {
            return Interval::BOTTOM;
        }
        Interval::new(
            if self.lo.cmp_key() >= other.lo.cmp_key() { self.lo } else { other.lo },
            if self.hi.cmp_key() <= other.hi.cmp_key() { self.hi } else { other.hi },
        )
    }

    /// Standard widening: bounds that grew jump to infinity.
    pub fn widen(&self, next: &Interval) -> Interval {
        if self.empty {
            return *next;
        }
        if next.empty {
            return *self;
        }
        let lo = if next.lo.cmp_key() < self.lo.cmp_key() { Bound::NegInf } else { self.lo };
        let hi = if next.hi.cmp_key() > self.hi.cmp_key() { Bound::PosInf } else { self.hi };
        Interval::new(lo, hi)
    }

    /// Standard narrowing: infinite bounds may be refined by `next`.
    pub fn narrow(&self, next: &Interval) -> Interval {
        if self.empty || next.empty {
            return *next;
        }
        let lo = if self.lo == Bound::NegInf { next.lo } else { self.lo };
        let hi = if self.hi == Bound::PosInf { next.hi } else { self.hi };
        Interval::new(lo, hi)
    }

    /// Abstract addition.
    pub fn add(&self, other: &Interval) -> Interval {
        if self.empty || other.empty {
            return Interval::BOTTOM;
        }
        let lo = match (self.lo.as_i128(), other.lo.as_i128()) {
            (Some(a), Some(b)) => Bound::from_i128_lo(a + b),
            _ => Bound::NegInf,
        };
        let hi = match (self.hi.as_i128(), other.hi.as_i128()) {
            (Some(a), Some(b)) => Bound::from_i128_hi(a + b),
            _ => Bound::PosInf,
        };
        Interval::new(lo, hi)
    }

    /// Abstract subtraction.
    pub fn sub(&self, other: &Interval) -> Interval {
        self.add(&other.neg())
    }

    /// Abstract negation.
    pub fn neg(&self) -> Interval {
        if self.empty {
            return Interval::BOTTOM;
        }
        let lo = match self.hi {
            Bound::PosInf => Bound::NegInf,
            Bound::Fin(v) => Bound::from_i128_lo(-(v as i128)),
            Bound::NegInf => Bound::PosInf,
        };
        let hi = match self.lo {
            Bound::NegInf => Bound::PosInf,
            Bound::Fin(v) => Bound::from_i128_hi(-(v as i128)),
            Bound::PosInf => Bound::NegInf,
        };
        Interval::new(lo, hi)
    }

    /// Abstract multiplication.
    pub fn mul(&self, other: &Interval) -> Interval {
        if self.empty || other.empty {
            return Interval::BOTTOM;
        }
        // [0,0] × anything = [0,0], even with infinite bounds.
        if *self == Interval::constant(0) || *other == Interval::constant(0) {
            return Interval::constant(0);
        }
        let corners =
            [(self.lo, other.lo), (self.lo, other.hi), (self.hi, other.lo), (self.hi, other.hi)];
        let mut lo: Option<i128> = None;
        let mut hi: Option<i128> = None;
        let mut inf_lo = false;
        let mut inf_hi = false;
        for (a, b) in corners {
            match (a.as_i128(), b.as_i128()) {
                (Some(x), Some(y)) => {
                    let p = x * y;
                    lo = Some(lo.map_or(p, |l| l.min(p)));
                    hi = Some(hi.map_or(p, |h| h.max(p)));
                }
                _ => {
                    // An infinite corner: the product can run to either
                    // infinity unless the finite side is exactly zero,
                    // which we handled above for the singleton case; be
                    // conservative here.
                    inf_lo = true;
                    inf_hi = true;
                }
            }
        }
        let lo = if inf_lo { Bound::NegInf } else { Bound::from_i128_lo(lo.unwrap()) };
        let hi = if inf_hi { Bound::PosInf } else { Bound::from_i128_hi(hi.unwrap()) };
        Interval::new(lo, hi)
    }

    /// Abstract remainder (`%`), conservative.
    pub fn rem(&self, other: &Interval) -> Interval {
        if self.empty || other.empty {
            return Interval::BOTTOM;
        }
        match other.hi.as_i128() {
            Some(k) if other.is_strictly_positive() => {
                let k = (k - 1).min(i64::MAX as i128) as i64;
                if self.is_non_negative() {
                    Interval::finite(0, k)
                } else {
                    Interval::finite(-k, k)
                }
            }
            _ => Interval::TOP,
        }
    }
}

fn fmt_interval(iv: &Interval, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if iv.empty {
        return write!(f, "⊥");
    }
    match iv.lo {
        Bound::NegInf => write!(f, "[-inf, ")?,
        Bound::Fin(v) => write!(f, "[{v}, ")?,
        Bound::PosInf => write!(f, "[+inf, ")?,
    }
    match iv.hi {
        Bound::NegInf => write!(f, "-inf]"),
        Bound::Fin(v) => write!(f, "{v}]"),
        Bound::PosInf => write!(f, "+inf]"),
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_interval(self, f)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_interval(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_and_predicates() {
        assert!(Interval::TOP.is_top());
        assert!(Interval::BOTTOM.is_bottom());
        assert!(Interval::finite(3, 2).is_bottom());
        assert!(Interval::finite(1, 9).is_strictly_positive());
        assert!(!Interval::finite(0, 9).is_strictly_positive());
        assert!(Interval::finite(0, 9).is_non_negative());
        assert!(Interval::finite(-9, -1).is_strictly_negative());
        assert!(Interval::finite(1, 5).excludes_zero());
        assert!(Interval::finite(-5, -1).excludes_zero());
        assert!(!Interval::finite(-1, 1).excludes_zero());
    }

    #[test]
    fn join_meet_basics() {
        let a = Interval::finite(0, 5);
        let b = Interval::finite(3, 9);
        assert_eq!(a.join(&b), Interval::finite(0, 9));
        assert_eq!(a.meet(&b), Interval::finite(3, 5));
        let c = Interval::finite(7, 9);
        assert!(a.meet(&c).is_bottom());
        assert_eq!(a.join(&Interval::BOTTOM), a);
        assert_eq!(a.meet(&Interval::TOP), a);
    }

    #[test]
    fn arithmetic() {
        let a = Interval::finite(1, 3);
        let b = Interval::finite(-2, 4);
        assert_eq!(a.add(&b), Interval::finite(-1, 7));
        assert_eq!(a.sub(&b), Interval::finite(-3, 5));
        assert_eq!(a.neg(), Interval::finite(-3, -1));
        assert_eq!(a.mul(&b), Interval::finite(-6, 12));
        assert_eq!(Interval::TOP.mul(&Interval::constant(0)), Interval::constant(0));
        assert_eq!(Interval::TOP.add(&a), Interval::TOP);
    }

    #[test]
    fn widen_narrow() {
        let a = Interval::finite(0, 5);
        let grown = Interval::finite(0, 10);
        let w = a.widen(&grown);
        assert_eq!(w, Interval::new(Bound::Fin(0), Bound::PosInf));
        let n = w.narrow(&Interval::finite(0, 10));
        assert_eq!(n, Interval::finite(0, 10));
        // Narrowing never touches finite bounds.
        assert_eq!(Interval::finite(2, 3).narrow(&Interval::finite(0, 9)), Interval::finite(2, 3));
    }

    #[test]
    fn rem_is_bounded_by_positive_divisor() {
        let a = Interval::finite(0, 100);
        let k = Interval::finite(1, 8);
        assert_eq!(a.rem(&k), Interval::finite(0, 7));
        let s = Interval::finite(-100, 100);
        assert_eq!(s.rem(&k), Interval::finite(-7, 7));
        assert_eq!(a.rem(&Interval::finite(-3, 3)), Interval::TOP);
    }

    fn arb_interval() -> impl Strategy<Value = Interval> {
        (any::<i8>(), any::<i8>()).prop_map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            Interval::finite(lo as i64, hi as i64)
        })
    }

    /// An interval together with a member of it.
    fn interval_with_member() -> impl Strategy<Value = (Interval, i64)> {
        arb_interval().prop_flat_map(|iv| {
            let (Bound::Fin(lo), Bound::Fin(hi)) = (iv.lo(), iv.hi()) else { unreachable!() };
            (Just(iv), lo..=hi)
        })
    }

    proptest! {
        #[test]
        fn add_is_sound((a, x) in interval_with_member(), (b, y) in interval_with_member()) {
            prop_assert!(a.add(&b).contains(x + y));
        }

        #[test]
        fn sub_is_sound((a, x) in interval_with_member(), (b, y) in interval_with_member()) {
            prop_assert!(a.sub(&b).contains(x - y));
        }

        #[test]
        fn mul_is_sound((a, x) in interval_with_member(), (b, y) in interval_with_member()) {
            prop_assert!(a.mul(&b).contains(x * y));
        }

        #[test]
        fn join_is_lub(a in arb_interval(), b in arb_interval(), x in -128i64..=127) {
            prop_assume!(a.contains(x) || b.contains(x));
            prop_assert!(a.join(&b).contains(x));
        }

        #[test]
        fn meet_is_glb(a in arb_interval(), b in arb_interval(), x in -128i64..=127) {
            prop_assert_eq!(a.meet(&b).contains(x), a.contains(x) && b.contains(x));
        }

        #[test]
        fn widen_covers_both(a in arb_interval(), b in arb_interval(), x in -128i64..=127) {
            prop_assume!(a.contains(x) || b.contains(x));
            prop_assert!(a.widen(&b).contains(x));
        }
    }
}
