//! Quickstart: disambiguate the paper's motivating loop.
//!
//! ```text
//! for (i = 0, j = N; i < j; i++, j--) v[i] = v[j];
//! ```
//!
//! Interval analyses cannot separate `v[i]` from `v[j]` (the ranges of
//! `i` and `j` overlap); the strict less-than analysis proves `i < j`
//! wherever both are alive, so the two locations never alias.
//!
//! Run with `cargo run --example quickstart`.

use sraa::alias::{AliasAnalysis, AliasResult, BasicAliasAnalysis, StrictInequalityAa};
use sraa::ir::InstKind;

fn main() {
    let source = r#"
        void swap_mirror(int* v, int N) {
            for (int i = 0, j = N; i < j; i++, j--) v[i] = v[j];
        }
    "#;

    // 1. Compile MiniC to SSA IR.
    let mut module = sraa::minic::compile(source).expect("valid MiniC");

    // 2. Run the paper's pipeline (this converts the module to e-SSA form:
    //    σ-copies at the `i < j` branch, live-range splits at `j--`).
    let lt = StrictInequalityAa::new(&mut module);
    let ba = BasicAliasAnalysis::new(&module);

    // 3. Find the two memory accesses.
    let fid = module.function_by_name("swap_mirror").unwrap();
    let f = module.function(fid);
    let mut load = None;
    let mut store = None;
    for b in f.block_ids() {
        for (_, data) in f.block_insts(b) {
            match data.kind {
                InstKind::Load { ptr } => load = Some(ptr),
                InstKind::Store { ptr, .. } => store = Some(ptr),
                _ => {}
            }
        }
    }
    let (vj, vi) = (load.unwrap(), store.unwrap());

    // 4. Ask both analyses.
    let verdict = |aa: &dyn AliasAnalysis| match aa.alias(&module, fid, vi, vj) {
        AliasResult::NoAlias => "no-alias",
        AliasResult::MayAlias => "may-alias",
        AliasResult::MustAlias => "must-alias",
    };
    println!("query: v[i] vs v[j] in `swap_mirror`");
    println!("  basic-aa (BA):            {}", verdict(&ba));
    println!("  strict inequalities (LT): {}", verdict(&lt));
    assert_eq!(lt.alias(&module, fid, vi, vj), AliasResult::NoAlias);
    println!("\nLT proves i < j at every program point where both are alive,");
    println!("so the compiler may reorder or parallelise the loop body.");
}
