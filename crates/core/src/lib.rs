//! `sraa-core` — **Pointer Disambiguation via Strict Inequalities**
//! (Maalej, Paisante, Ramos, Gonnord & Pereira — CGO 2017).
//!
//! This crate is the paper's primary contribution: a sparse, inter-
//! procedural *less-than* dataflow analysis whose invariant is
//!
//! > if `x′ ∈ LT(x)`, then `x′ < x` at every program point where both
//! > variables are simultaneously alive (paper Corollary 3.10),
//!
//! and the observation that makes it an alias analysis:
//!
//! > if `p1 < p2`, then `p1` and `p2` cannot alias.
//!
//! # Architecture — the `DisambiguationEngine`
//!
//! Everything hangs off one pipeline, owned end to end by the
//! [`DisambiguationEngine`]:
//!
//! ```text
//!   ┌──────────┐  σ/sub splits  ┌─────────┐  Figure 7, per function  ┌───────────────┐
//!   │SSA module│───(sraa-essa)─▶│  e-SSA  │───(scoped threads)──────▶│ConstraintSystem│
//!   └──────────┘                └─────────┘                          └───────┬───────┘
//!                                                                           │
//!                                             FixpointSolver (SolverKind)   │
//!                                  ┌─────────────────┬──────────────────────┘
//!                                  ▼                 ▼
//!                           WorklistSolver       SccSolver            one shared LtSet
//!                           (paper §3.4)         (§6 answer)          representation
//!                                  └────────┬────────┘
//!                                           ▼
//!                                      ┌──────────┐   memoized pair cache, batch API
//!                                      │ Solution │──▶ queries: less_than · lt_set ·
//!                                      └──────────┘            no_alias · histograms
//! ```
//!
//! 1. **e-SSA conversion** ([`sraa_essa`]) splits live ranges at
//!    conditionals (σ-copies) and subtractions, giving the analysis the
//!    Static Single Information property — one abstract state per name.
//! 2. **Range analysis** ([`sraa_range`]) classifies `x1 = x2 + x3` as
//!    addition/subtraction by operand signs.
//! 3. **Constraint generation** ([`constraints`], the paper's Figure 7) —
//!    `O(|V|)`, one pass per function, fanned out across scoped threads
//!    on large modules; variables are interned [`VarId`]s.
//! 4. **Fixpoint solving** over the lattice `⟨V, ∩, ∅, V, ⊆⟩`, descending
//!    from ⊤, behind the pluggable [`FixpointSolver`] trait: the paper's
//!    FIFO worklist ([`solver`], [`SolverKind::Worklist`]) or the
//!    SCC-condensation solver ([`fast_solver`], [`SolverKind::Scc`] — the
//!    default). Both propagate change-by-change through a pluggable
//!    lattice store ([`lattice`], [`LatticeBackend`]): shared `Arc<[u32]>`
//!    slices or a flat CSR/bitset arena. Every combination returns the
//!    same [`Solution`]; differential tests prove them interchangeable.
//! 5. **Disambiguation** (paper Definition 3.11):
//!    [`no_alias`](DisambiguationEngine::no_alias) — `p1 ∈ LT(p2)` ∨
//!    `p2 ∈ LT(p1)` (criterion 1), or both derived from one base with
//!    strictly ordered variable offsets (criterion 2) — served from a
//!    memoized per-function pair cache with a batch all-pairs API.
//!
//! Consumers (the `sraa-alias` backends, `sraa-pentagon`, the `sraa-opt`
//! passes, `sraa-pdg`, the `sraa` CLI) hold an engine — usually behind an
//! `Arc` — and query it; none of them constructs solvers.
//!
//! # Example — the paper's motivating loop
//!
//! ```
//! use sraa_core::StrictInequalityAnalysis;
//!
//! let mut module = sraa_minic::compile(r#"
//!     void f(int* v, int N) {
//!         for (int i = 0, j = N; i < j; i++, j--) v[i] = v[j];
//!     }
//! "#).unwrap();
//! let lt = StrictInequalityAnalysis::run(&mut module);
//!
//! // find the store (v[i]) and load (v[j]) addresses:
//! let fid = module.function_by_name("f").unwrap();
//! let f = module.function(fid);
//! let mut load_ptr = None;
//! let mut store_ptr = None;
//! for b in f.block_ids() {
//!     for (_, d) in f.block_insts(b) {
//!         match d.kind {
//!             sraa_ir::InstKind::Load { ptr } => load_ptr = Some(ptr),
//!             sraa_ir::InstKind::Store { ptr, .. } => store_ptr = Some(ptr),
//!             _ => {}
//!         }
//!     }
//! }
//! assert!(lt.no_alias(f, fid, load_ptr.unwrap(), store_ptr.unwrap()),
//!         "v[i] and v[j] cannot alias while i < j");
//! ```

pub mod analysis;
pub mod constraints;
pub mod engine;
pub mod fast_solver;
pub mod jobs;
pub mod lattice;
pub mod lt_set;
pub mod ondemand;
pub mod persist;
pub(crate) mod setops;
pub mod solver;
pub mod store;
pub mod summary;
#[cfg(test)]
pub(crate) mod test_systems;
pub mod var_index;

pub use analysis::{derived_pointer, strip_copies, StrictInequalityAnalysis};
pub use constraints::{generate, generate_with_summaries, Constraint, ConstraintSystem, GenConfig};
pub use engine::{
    Contextuality, DisambiguationEngine, EngineConfig, FixpointSolver, SccSolver, SolverKind,
    WorklistSolver,
};
pub use fast_solver::{solve_fast, solve_fast_with};
pub use jobs::Jobs;
pub use lattice::{ChangeResult, LatticeBackend};
pub use lt_set::LtSet;
pub use ondemand::OnDemandProver;
pub use persist::{PersistError, SummaryCache, SummaryKeys, FORMAT_VERSION};
pub use solver::{solve, solve_with, Solution, SolveStats};
pub use store::{SharedSummaryStore, StoreOutcome};
pub use summary::{CacheOutcome, FunctionSummary, ModuleSummaries, SummaryStats};
pub use var_index::{VarId, VarIndex};
