//! Interprocedural **strict-inequality summaries** — the layer that lets
//! `x < len`-style facts cross call boundaries.
//!
//! The paper's analysis is intraprocedural: every call result is grounded
//! at `LT(r) = ∅`, so a helper as trivial as `int next(int i) { return
//! i + 1; }` erases the `i < next(i)` fact its body proves. This module
//! distils, for every function, a **summary** — the set of formal
//! parameters that are strictly less than every value the function can
//! return — and propagates it bottom-up over the SCC condensation of the
//! direct call graph ([`sraa_ir::CallGraph`]):
//!
//! ```text
//!   condensed call graph, callees-first
//!   ┌────────┐      ┌───────────┐      ┌───────────┐
//!   │ leaf g │─────▶│ SCC {f,h} │─────▶│  main …   │
//!   └────────┘      └───────────┘      └───────────┘
//!    solve g's       iterate the        every call site
//!    constraints,    members' solves    r = g(a…) now yields
//!    distil S(g)     to a fixpoint      LT(r) ⊇ {a_j} ∪ LT(a_j)
//!                    (recursion)           for each j ∈ S(g)
//! ```
//!
//! # Per-SCC solves
//!
//! Each component is solved in isolation: its members' Figure-7
//! constraints (with summaries of *earlier* components applied at call
//! sites), plus `Init` grounding for the formal parameters. Grounded
//! params are what makes a distilled fact **context-free** — `param_j ∈
//! LT(ret)` must hold for every caller, so the solve must not assume any
//! caller facts. Variables are remapped into a compact per-component
//! space (`SccSpace`) so a solve costs `O(|SCC|)`, not `O(|module|)`.
//!
//! # Recursion
//!
//! Members of a recursive component read their *own* (and their
//! siblings') summaries at intra-SCC call sites. The fixpoint starts
//! **optimistically** (every parameter assumed `< ret`) and descends
//! until stable — the same greatest-fixpoint treatment the paper gives
//! φ-cycles (Theorem 3.7). Soundness is by induction on the height of a
//! terminating call tree: a fact consumed at height `h` is justified by
//! derivations over strictly smaller trees, bottoming out at
//! non-recursive return paths; claims about calls that never return are
//! vacuous (there is no runtime value to compare). The differential and
//! interpreter-based tests (`tests/interproc.rs`) check exactly this.
//!
//! # What a summary does *not* carry (yet)
//!
//! `ret < param_j` facts (e.g. `return n - 1`) would require editing the
//! *argument's* defining constraint at every call site; caller-specific
//! (context-sensitive) facts and indirect calls are also out of scope.
//! See ROADMAP "Open items".

use crate::constraints::{self, Constraint, GenConfig};
use crate::engine::FixpointSolver;
use crate::jobs::Jobs;
use crate::lattice::LatticeBackend;
use crate::persist::{SummaryCache, SummaryKeys};
use crate::store::{SharedSummaryStore, StoreOutcome};
use crate::var_index::{VarId, VarIndex};
use sraa_ir::{CallGraph, FuncId, InstKind, Module, Value};
use sraa_range::RangeAnalysis;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Read-only summary lookup during constraint generation. The solved
/// module view ([`ModuleSummaries`]) and the per-SCC overlay a wavefront
/// worker holds while iterating a recursive component ([`SccView`]) both
/// answer the one question `call_result` asks: which parameters of the
/// callee are proven `< ret`. `Sync` because workers share the view
/// across scoped threads.
pub(crate) trait SummarySource: Sync {
    /// Sorted indices of `f`'s parameters proven strictly less than
    /// every value `f` returns.
    fn args_lt_ret_of(&self, f: FuncId) -> &[u32];
}

impl SummarySource for ModuleSummaries {
    fn args_lt_ret_of(&self, f: FuncId) -> &[u32] {
        self.per_func[f.index()].args_lt_ret()
    }
}

/// What one function guarantees about its return value, independent of
/// any calling context.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FunctionSummary {
    /// Sorted indices `j` of formal parameters with `param_j < ret` at
    /// every return site. (`pub(crate)` so `persist` can reconstruct
    /// summaries from their serialized form.)
    pub(crate) args_lt_ret: Box<[u32]>,
}

impl FunctionSummary {
    /// Sorted indices of parameters proven strictly less than every
    /// returned value.
    pub fn args_lt_ret(&self) -> &[u32] {
        &self.args_lt_ret
    }

    /// Number of facts in the summary.
    pub fn facts(&self) -> usize {
        self.args_lt_ret.len()
    }

    /// Whether the summary carries no facts (calls stay opaque).
    pub fn is_empty(&self) -> bool {
        self.args_lt_ret.is_empty()
    }
}

/// Statistics of one bottom-up summary computation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SummaryStats {
    /// Components of the condensed call graph.
    pub sccs: usize,
    /// Components containing a call cycle.
    pub recursive_sccs: usize,
    /// Total per-SCC solves (≥ `sccs` on a cold run; recursion iterates,
    /// and warm runs skip cache-hit components entirely).
    pub solves: u64,
    /// Total `param_j < ret` facts across all functions.
    pub facts: usize,
}

/// How a warm run used the persistent summary cache, counted per
/// *function* (every function of the module falls in exactly one bucket).
///
/// Deterministic for a given `(module, cache)` pair — the differential
/// tests assert the exact counts against call-graph reverse reachability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Functions whose cached key matched; their summaries were reused
    /// and their component's solve skipped.
    pub hits: u32,
    /// Functions with no cache entry under their name.
    pub misses: u32,
    /// Functions whose entry exists but whose key changed (the function,
    /// or something it can call, was edited).
    pub invalidated: u32,
}

impl CacheOutcome {
    /// Hits over all classified functions, in `[0, 1]`; `1.0` for an
    /// empty module (nothing *missed*).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.invalidated;
        if total == 0 {
            1.0
        } else {
            f64::from(self.hits) / f64::from(total)
        }
    }
}

/// Per-function summaries for a whole module, in [`FuncId`] order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuleSummaries {
    per_func: Vec<FunctionSummary>,
    /// Computation statistics (component counts, fixpoint iterations).
    pub stats: SummaryStats,
}

impl ModuleSummaries {
    /// Computes all summaries bottom-up over the condensed call graph.
    ///
    /// `module` must already be in e-SSA form with `ranges` computed for
    /// it (the same preconditions as constraint generation).
    ///
    /// The walk proceeds wavefront by wavefront over the Kahn
    /// levelization ([`sraa_ir::Condensation::layers`]): components in
    /// one layer share no call edges, so `jobs > 1` dispatches a layer's
    /// cold solves across work-stealing scoped threads. Results are
    /// **byte-identical for every jobs value** — workers only read the
    /// frozen summaries of strictly lower layers, merges happen in
    /// component order, and all statistics are commutative sums.
    pub fn compute(
        module: &Module,
        ranges: &RangeAnalysis,
        cfg: GenConfig,
        index: &VarIndex,
        solver: &dyn FixpointSolver,
        lattice: LatticeBackend,
        jobs: Jobs,
    ) -> Self {
        Self::compute_inner(module, ranges, cfg, index, solver, lattice, jobs, false, None, None).0
    }

    /// [`ModuleSummaries::compute`] with a **warm path**: components whose
    /// members all hit the persistent `cache` (same name, same
    /// [`SummaryKeys`] key) reuse their stored summaries and skip the
    /// Init-grounded per-SCC solve entirely. Cold components solve as
    /// usual — against the already-installed summaries of their callees,
    /// cached or not — so the result is *identical* to a cold
    /// [`ModuleSummaries::compute`] (up to `stats.solves`, which records
    /// the work actually done; the differential suite in
    /// `tests/incremental.rs` holds this to byte-identical solutions).
    /// Computes (and returns) the [`SummaryKeys`] itself, sharing one
    /// call-graph + condensation build with the solve loop; hand the
    /// keys to [`crate::persist::save`] to refresh the cache afterwards.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_incremental(
        module: &Module,
        ranges: &RangeAnalysis,
        cfg: GenConfig,
        index: &VarIndex,
        solver: &dyn FixpointSolver,
        lattice: LatticeBackend,
        jobs: Jobs,
        cache: Option<&SummaryCache>,
    ) -> (Self, SummaryKeys, CacheOutcome) {
        let (sums, keys, outcome, _) = Self::compute_inner(
            module, ranges, cfg, index, solver, lattice, jobs, true, cache, None,
        );
        (sums, keys.expect("requested above"), outcome)
    }

    /// [`ModuleSummaries::compute_incremental`] with an additional
    /// consultation of a content-addressed [`SharedSummaryStore`]: any
    /// component the per-module `cache` could not satisfy is looked up in
    /// the store by its [`SummaryKeys`] key before being solved cold. The
    /// per-module cache wins when both would hit (it is free — no store
    /// lock traffic), so the two compose: `--summary-cache` answers
    /// "did *this* module change", the store answers "has *anyone*
    /// already solved this exact function". Publishing back is the
    /// caller's job ([`crate::DisambiguationEngine`] publishes every
    /// `(key, summary)` pair after the solve; insert-if-absent makes that
    /// idempotent).
    #[allow(clippy::too_many_arguments)]
    pub fn compute_incremental_shared(
        module: &Module,
        ranges: &RangeAnalysis,
        cfg: GenConfig,
        index: &VarIndex,
        solver: &dyn FixpointSolver,
        lattice: LatticeBackend,
        jobs: Jobs,
        cache: Option<&SummaryCache>,
        store: Option<&SharedSummaryStore>,
    ) -> (Self, SummaryKeys, CacheOutcome, StoreOutcome) {
        let (sums, keys, outcome, store_outcome) = Self::compute_inner(
            module, ranges, cfg, index, solver, lattice, jobs, true, cache, store,
        );
        (sums, keys.expect("requested above"), outcome, store_outcome)
    }

    #[allow(clippy::too_many_arguments)]
    fn compute_inner(
        module: &Module,
        ranges: &RangeAnalysis,
        cfg: GenConfig,
        index: &VarIndex,
        solver: &dyn FixpointSolver,
        lattice: LatticeBackend,
        jobs: Jobs,
        want_keys: bool,
        cache: Option<&SummaryCache>,
        store: Option<&SharedSummaryStore>,
    ) -> (Self, Option<SummaryKeys>, CacheOutcome, StoreOutcome) {
        let cg = CallGraph::build(module);
        let cond = cg.condense();
        let keys = want_keys.then(|| SummaryKeys::compute_with(module, &cg, &cond));
        let warm = cache.and_then(|c| keys.as_ref().map(|k| (k, c)));
        let shared = store.and_then(|s| keys.as_ref().map(|k| (k, s)));
        let jobs = jobs.get();
        let mut outcome = CacheOutcome::default();
        let mut store_outcome = StoreOutcome::default();
        let mut sums = ModuleSummaries {
            per_func: vec![FunctionSummary::default(); module.num_functions()],
            stats: SummaryStats {
                sccs: cond.len(),
                recursive_sccs: cond.num_recursive(),
                ..Default::default()
            },
        };

        for layer in cond.layers() {
            // Warm path first, serially: an all-members hit installs the
            // cached summaries and skips the solve — too cheap to pay a
            // thread spawn for. Partial hits cannot happen within a
            // component (members are mutually reachable, so one edit
            // re-keys them all) short of a hash collision; if one ever
            // did, the cold path below recomputes everything soundly.
            let mut cold: Vec<usize> = Vec::new();
            for &ci in &layer {
                let ci = ci as usize;
                let members = cond.members(ci);
                if let Some((keys, cache)) = warm {
                    let mut all_hit = true;
                    for &f in members {
                        match cache.get(&module.function(f).name) {
                            Some((k, _)) if k == keys.of(f) => outcome.hits += 1,
                            Some(_) => {
                                outcome.invalidated += 1;
                                all_hit = false;
                            }
                            None => {
                                outcome.misses += 1;
                                all_hit = false;
                            }
                        }
                    }
                    if all_hit {
                        for &f in members {
                            let cached = cache
                                .lookup(&module.function(f).name, keys.of(f))
                                .expect("classified as hit above");
                            sums.per_func[f.index()] = cached.clone();
                        }
                        continue;
                    }
                }
                // Shared-store consult, after the per-module cache (a
                // cache hit is free; the store takes a shard lock). The
                // key is content-addressed across modules, so a hit here
                // may come from a different module name, another daemon,
                // or another machine. All-or-nothing per component, like
                // the cache: members share a key-invalidation fate.
                if let Some((keys, store)) = shared {
                    let found: Option<Vec<FunctionSummary>> =
                        members.iter().map(|&f| store.get(keys.of(f))).collect();
                    if let Some(found) = found {
                        store_outcome.hits += members.len() as u32;
                        for (&f, s) in members.iter().zip(found) {
                            sums.per_func[f.index()] = s;
                        }
                        continue;
                    }
                    store_outcome.misses += members.len() as u32;
                }
                cold.push(ci);
            }

            // Cold components of one layer are mutually independent:
            // solve them serially, or fan out work-stealing workers when
            // the layer carries enough work to amortize the spawns.
            let layer_insts: usize = cold
                .iter()
                .flat_map(|&ci| cond.members(ci))
                .map(|&f| module.function(f).num_insts())
                .sum();
            let parallel =
                jobs >= 2 && cold.len() >= 2 && layer_insts >= WAVEFRONT_MIN_INSTRUCTIONS;
            let solve_one = |ci: usize| {
                solve_scc(
                    module,
                    ranges,
                    cfg,
                    index,
                    solver,
                    lattice,
                    cond.members(ci),
                    cond.is_recursive(ci),
                    &sums.per_func,
                )
            };
            let outs: Vec<CompOut> = if !parallel {
                cold.iter().map(|&ci| solve_one(ci)).collect()
            } else {
                // Work stealing over the layer: one shared cursor, each
                // worker grabs the next unsolved component. Slot results
                // by index so the merge below is order-independent of
                // which worker solved what.
                let cursor = AtomicUsize::new(0);
                let workers = jobs.min(cold.len());
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            s.spawn(|| {
                                let mut done: Vec<(usize, CompOut)> = Vec::new();
                                loop {
                                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                                    let Some(&ci) = cold.get(i) else { break };
                                    done.push((i, solve_one(ci)));
                                }
                                done
                            })
                        })
                        .collect();
                    let mut slots: Vec<Option<CompOut>> = cold.iter().map(|_| None).collect();
                    for h in handles {
                        for (i, out) in h.join().expect("summary wavefront worker panicked") {
                            slots[i] = Some(out);
                        }
                    }
                    slots
                        .into_iter()
                        .map(|o| o.expect("work-stealing cursor covers every component"))
                        .collect()
                })
            };

            // Deterministic merge, in component order. `solves` is a
            // commutative sum, so the total matches a serial walk.
            for (&ci, out) in cold.iter().zip(outs) {
                sums.stats.solves += out.solves;
                for (&f, s) in cond.members(ci).iter().zip(out.summaries) {
                    sums.per_func[f.index()] = s;
                }
            }
        }

        sums.stats.facts = sums.per_func.iter().map(FunctionSummary::facts).sum();
        (sums, keys, outcome, store_outcome)
    }

    /// The summary of function `f`.
    pub fn of(&self, f: FuncId) -> &FunctionSummary {
        &self.per_func[f.index()]
    }

    /// Total `param_j < ret` facts across the module.
    pub fn facts(&self) -> usize {
        self.stats.facts
    }

    /// `(function, summary)` pairs in ascending [`FuncId`] order.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &FunctionSummary)> {
        self.per_func.iter().enumerate().map(|(i, s)| (FuncId::from_index(i), s))
    }
}

/// A wavefront layer below this much total work (instruction count over
/// its cold members) solves serially even at `jobs > 1`: thread spawns
/// would dominate on the small modules that saturate the test corpus.
/// Mirrors `PARALLEL_MIN_INSTRUCTIONS` in the constraint generator.
pub(crate) const WAVEFRONT_MIN_INSTRUCTIONS: usize = 2_000;

/// What one per-component solve produces: the members' summaries (in
/// member order) and the work counters to fold into [`SummaryStats`].
struct CompOut {
    summaries: Vec<FunctionSummary>,
    solves: u64,
}

/// The summary view one in-flight component solve reads: its own members'
/// current iterate (the optimistic descent state), everything else from
/// the frozen lower-layer base. Members never call *sideways* into their
/// own layer and never upward, so the base is always final where it is
/// consulted.
struct SccView<'a> {
    base: &'a [FunctionSummary],
    /// Ascending by [`FuncId`] (Tarjan sorts each component).
    members: &'a [FuncId],
    /// Parallel to `members`.
    local: &'a [FunctionSummary],
}

impl SummarySource for SccView<'_> {
    fn args_lt_ret_of(&self, f: FuncId) -> &[u32] {
        match self.members.binary_search(&f) {
            Ok(i) => self.local[i].args_lt_ret(),
            Err(_) => self.base[f.index()].args_lt_ret(),
        }
    }
}

/// Solves one cold component against the frozen summaries in `base` and
/// returns its members' distilled summaries. Pure with respect to the
/// module walk — workers share nothing mutable, which is what makes the
/// wavefront dispatch deterministic.
#[allow(clippy::too_many_arguments)]
fn solve_scc(
    module: &Module,
    ranges: &RangeAnalysis,
    cfg: GenConfig,
    index: &VarIndex,
    solver: &dyn FixpointSolver,
    lattice: LatticeBackend,
    members: &[FuncId],
    recursive: bool,
    base: &[FunctionSummary],
) -> CompOut {
    // Optimistic start for recursion: assume every parameter of every
    // member is < ret, then descend (greatest fixpoint).
    let mut local: Vec<FunctionSummary> = if recursive {
        members
            .iter()
            .map(|&f| {
                let n = module.function(f).params.len() as u32;
                FunctionSummary { args_lt_ret: (0..n).collect() }
            })
            .collect()
    } else {
        vec![FunctionSummary::default(); members.len()]
    };
    let mut solves = 0u64;
    let space = SccSpace::new(module, index, members);
    loop {
        let view = SccView { base, members, local: &local };
        let raw = constraints::generate_scoped(module, ranges, cfg, index, members, &view);
        let local_cs: Vec<Constraint> = raw.iter().map(|c| space.remap(c)).collect();
        let solution = solver.solve_with(&local_cs, space.len(), lattice);
        solves += 1;
        let mut changed = false;
        for (i, &f) in members.iter().enumerate() {
            let new = distil(module, index, &space, &solution, f);
            if new != local[i] {
                local[i] = new;
                changed = true;
            }
        }
        // Non-recursive components never read their own summary, so one
        // solve is the fixpoint. Recursive components iterate: the
        // optimistic start only ever *sheds* facts, so the descent is
        // bounded by the total fact count.
        if !recursive || !changed {
            break;
        }
    }
    CompOut { summaries: local, solves }
}

/// Distils `f`'s summary from a solved per-SCC system: `j` is a fact iff
/// every return site's value has `param_j` in its `LT` set. Functions
/// with no value-returning site get the empty summary — their return
/// value never exists, so claims about it would be vacuous (mirroring
/// the solver's ⊤-freeze philosophy).
fn distil(
    module: &Module,
    index: &VarIndex,
    space: &SccSpace,
    solution: &crate::solver::Solution,
    f: FuncId,
) -> FunctionSummary {
    let func = module.function(f);
    let mut ret_vals: Vec<Value> = Vec::new();
    for b in func.block_ids() {
        if let Some(t) = func.terminator(b) {
            if let InstKind::Ret(Some(v)) = func.inst(t).kind {
                ret_vals.push(v);
            }
        }
    }
    if ret_vals.is_empty() {
        return FunctionSummary::default();
    }
    let args_lt_ret: Vec<u32> = (0..func.params.len() as u32)
        .filter(|&j| {
            let p = space.local(index.id(f, func.param_value(j as usize)));
            ret_vals.iter().all(|&v| solution.less_than(p, space.local(index.id(f, v))))
        })
        .collect();
    FunctionSummary { args_lt_ret: args_lt_ret.into() }
}

/// Compact variable numbering for one SCC: the members' (contiguous,
/// per-function) [`VarIndex`] ranges packed side by side, so per-SCC
/// solves allocate `O(|SCC|)` lattice state instead of `O(|module|)`.
struct SccSpace {
    /// `(global_start, global_end, local_start)` per member, sorted by
    /// `global_start`.
    ranges: Vec<(u32, u32, u32)>,
    total: usize,
}

impl SccSpace {
    fn new(module: &Module, index: &VarIndex, members: &[FuncId]) -> Self {
        let mut ranges = Vec::with_capacity(members.len());
        let mut total = 0u32;
        for &f in members {
            let n = module.function(f).num_insts() as u32;
            if n == 0 {
                continue;
            }
            let start = index.id(f, Value::from_index(0)).raw();
            ranges.push((start, start + n, total));
            total += n;
        }
        ranges.sort_unstable_by_key(|r| r.0);
        SccSpace { ranges, total: total as usize }
    }

    fn len(&self) -> usize {
        self.total
    }

    /// Maps a module-wide id into the compact space. The id must belong
    /// to a member function — per-SCC constraints never mention anything
    /// else.
    fn local(&self, id: VarId) -> VarId {
        let g = id.raw();
        let i = self.ranges.partition_point(|&(start, _, _)| start <= g);
        let (start, end, local_start) = self.ranges[i.checked_sub(1).expect("id below all ranges")];
        debug_assert!(g < end, "id {g} outside the SCC's variable ranges");
        VarId::new(local_start + (g - start))
    }

    fn remap(&self, c: &Constraint) -> Constraint {
        match c {
            Constraint::Init { x } => Constraint::Init { x: self.local(*x) },
            Constraint::Copy { x, source } => {
                Constraint::Copy { x: self.local(*x), source: self.local(*source) }
            }
            Constraint::Union { x, elems, sources } => Constraint::Union {
                x: self.local(*x),
                elems: elems.iter().map(|&e| self.local(e)).collect(),
                sources: sources.iter().map(|&s| self.local(s)).collect(),
            },
            Constraint::Inter { x, sources } => Constraint::Inter {
                x: self.local(*x),
                sources: sources.iter().map(|&s| self.local(s)).collect(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SolverKind;
    use crate::jobs::Jobs;

    fn summaries(src: &str) -> (Module, ModuleSummaries) {
        let mut m = sraa_minic::compile(src).unwrap();
        let (ranges, _) = sraa_essa::transform_module(&mut m);
        let index = VarIndex::new(&m);
        let sums = ModuleSummaries::compute(
            &m,
            &ranges,
            GenConfig::default(),
            &index,
            SolverKind::Scc.solver(),
            LatticeBackend::Auto,
            Jobs::default(),
        );
        (m, sums)
    }

    fn facts_of(m: &Module, sums: &ModuleSummaries, name: &str) -> Vec<u32> {
        sums.of(m.function_by_name(name).unwrap()).args_lt_ret().to_vec()
    }

    #[test]
    fn increment_helper_orders_its_argument() {
        let (m, sums) = summaries(
            r#"
            int next(int i) { return i + 1; }
            int main() { return next(3); }
            "#,
        );
        assert_eq!(facts_of(&m, &sums, "next"), vec![0]);
        assert_eq!(facts_of(&m, &sums, "main"), Vec::<u32>::new());
        assert_eq!(sums.facts(), 1);
        assert_eq!(sums.stats.recursive_sccs, 0);
    }

    #[test]
    fn facts_hold_on_every_return_path_or_not_at_all() {
        let (m, sums) = summaries(
            r#"
            int both(int i, int k) { if (k > 0) { return i + k; } return i + 1; }
            int one_side(int i, int k) { if (k > 0) { return i + k; } return i; }
            int main() { return both(1, 2) + one_side(1, 2); }
            "#,
        );
        // `both` proves i < ret on both paths (k>0 via the σ-range, +1
        // directly); k < ret only on the first path.
        assert_eq!(facts_of(&m, &sums, "both"), vec![0]);
        // `one_side` returns i itself on the else path: i < i is false.
        assert_eq!(facts_of(&m, &sums, "one_side"), Vec::<u32>::new());
    }

    #[test]
    fn pointer_advance_helper_is_summarised() {
        let (m, sums) = summaries(
            r#"
            int* advance(int* p, int k) { if (k > 0) { return p + k; } return p + 1; }
            int main() { int a[8]; int* q = advance(a, 3); return *q; }
            "#,
        );
        assert_eq!(facts_of(&m, &sums, "advance"), vec![0]);
    }

    #[test]
    fn summaries_chain_through_helpers_bottom_up() {
        // twice's fact needs next's summary to already be available.
        let (m, sums) = summaries(
            r#"
            int next(int i) { return i + 1; }
            int twice(int i) { return next(next(i)); }
            int main() { return twice(1); }
            "#,
        );
        assert_eq!(facts_of(&m, &sums, "next"), vec![0]);
        assert_eq!(facts_of(&m, &sums, "twice"), vec![0]);
    }

    #[test]
    fn recursion_reaches_the_optimistic_fixpoint() {
        // Every path either returns p + 1 directly or recurses on p + 1:
        // p < skipr(p, n) holds on every terminating execution.
        let (m, sums) = summaries(
            r#"
            int* skipr(int* p, int n) {
                if (n <= 0) { return p + 1; }
                return skipr(p + 1, n - 1);
            }
            int main() { int a[8]; int* q = skipr(a, 3); return *q; }
            "#,
        );
        assert_eq!(facts_of(&m, &sums, "skipr"), vec![0]);
        assert_eq!(sums.stats.recursive_sccs, 1);
        assert!(sums.stats.solves > sums.stats.sccs as u64, "recursion must iterate");
    }

    #[test]
    fn recursive_identity_sheds_the_optimistic_assumption() {
        // The base case returns p itself: p < p is false, so the
        // optimistic start must descend to the empty summary.
        let (m, sums) = summaries(
            r#"
            int* walk(int* p, int n) {
                if (n <= 0) { return p; }
                return walk(p + 1, n - 1);
            }
            int main() { int a[8]; int* q = walk(a, 3); return *q; }
            "#,
        );
        assert_eq!(facts_of(&m, &sums, "walk"), Vec::<u32>::new());
    }

    #[test]
    fn mutual_recursion_converges() {
        let (m, sums) = summaries(
            r#"
            int ping(int i, int n) { if (n <= 0) { return i + 1; } return pong(i + 1, n - 1); }
            int pong(int i, int n) { if (n <= 0) { return i + 2; } return ping(i, n - 1); }
            int main() { return ping(0, 4); }
            "#,
        );
        // ping: both paths bump i (directly, or pong's fact on i+1).
        assert_eq!(facts_of(&m, &sums, "ping"), vec![0]);
        // pong recurses on the *same* i, so its fact leans on ping's —
        // which holds — giving i < pong(i, n) too.
        assert_eq!(facts_of(&m, &sums, "pong"), vec![0]);
    }

    #[test]
    fn void_and_constant_returns_carry_no_facts() {
        let (m, sums) = summaries(
            r#"
            void sink(int* v, int i) { v[i] = 0; }
            int fortytwo(int i) { return 42; }
            int main() { int a[4]; sink(a, 1); return fortytwo(1); }
            "#,
        );
        assert_eq!(facts_of(&m, &sums, "sink"), Vec::<u32>::new());
        assert_eq!(facts_of(&m, &sums, "fortytwo"), Vec::<u32>::new());
    }

    #[test]
    fn warm_run_reuses_every_summary_and_skips_all_solves() {
        use crate::persist::{self, SummaryKeys};
        let src = r#"
            int next(int i) { return i + 1; }
            int twice(int i) { return next(next(i)); }
            int main() { return twice(1); }
        "#;
        let mut m = sraa_minic::compile(src).unwrap();
        let (ranges, _) = sraa_essa::transform_module(&mut m);
        let index = VarIndex::new(&m);
        let solver = SolverKind::Scc.solver();
        let cold = ModuleSummaries::compute(
            &m,
            &ranges,
            GenConfig::default(),
            &index,
            solver,
            LatticeBackend::Auto,
            Jobs::default(),
        );
        let keys = SummaryKeys::compute(&m);
        let cache = persist::from_bytes(
            &persist::to_bytes(&m, &cold, &keys, GenConfig::default()),
            GenConfig::default(),
        )
        .unwrap();

        let (warm, warm_keys, outcome) = ModuleSummaries::compute_incremental(
            &m,
            &ranges,
            GenConfig::default(),
            &index,
            solver,
            LatticeBackend::Auto,
            Jobs::default(),
            Some(&cache),
        );
        assert_eq!(warm_keys, keys, "keys must not depend on who builds the condensation");
        assert_eq!((outcome.hits, outcome.misses, outcome.invalidated), (3, 0, 0));
        assert_eq!(outcome.hit_rate(), 1.0);
        assert_eq!(warm.stats.solves, 0, "an all-hit warm run must not solve anything");
        for (f, s) in cold.iter() {
            assert_eq!(warm.of(f), s);
        }
        assert_eq!(warm.facts(), cold.facts());

        // Without a cache, the incremental entry point is exactly `compute`.
        let (cold2, _, zero) = ModuleSummaries::compute_incremental(
            &m,
            &ranges,
            GenConfig::default(),
            &index,
            solver,
            LatticeBackend::Auto,
            Jobs::default(),
            None,
        );
        assert_eq!(cold2, cold);
        assert_eq!(zero, CacheOutcome::default());
    }

    /// A module wide enough that jobs > 1 genuinely takes the
    /// work-stealing branch: `width` independent straight-line helpers
    /// (one wavefront layer) with enough instructions to clear
    /// [`WAVEFRONT_MIN_INSTRUCTIONS`], plus callers that chain them.
    fn wide_source(width: usize, depth: usize) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for i in 0..width {
            let _ = writeln!(s, "int wf{i}(int a, int b) {{");
            let _ = writeln!(s, "    int x0 = a + 1;");
            let _ = writeln!(s, "    int x1 = x0 + b;");
            for j in 2..depth {
                let _ = writeln!(s, "    int x{j} = x{} + {};", j - 1, (i + j) % 9 + 1);
            }
            let _ = writeln!(s, "    return x{} + 1;", depth - 1);
            let _ = writeln!(s, "}}");
        }
        let _ = writeln!(s, "int rec(int i, int n) {{");
        let _ = writeln!(s, "    if (n <= 0) {{ return i + 1; }}");
        let _ = writeln!(s, "    return rec(wf0(i, 1), n - 1);");
        let _ = writeln!(s, "}}");
        s.push_str("int main() {\n    int s = 0;\n");
        for i in 0..width {
            let _ = writeln!(s, "    s = s + wf{i}({}, {});", i % 5, i % 3 + 1);
        }
        s.push_str("    s = s + rec(1, 3);\n    return s;\n}\n");
        s
    }

    #[test]
    fn jobs_do_not_change_summaries_or_stats() {
        let src = wide_source(24, 80);
        let mut m = sraa_minic::compile(&src).unwrap();
        let (ranges, _) = sraa_essa::transform_module(&mut m);
        let index = VarIndex::new(&m);
        let total_insts: usize = m.functions().map(|(_, f)| f.num_insts()).sum();
        assert!(
            total_insts >= WAVEFRONT_MIN_INSTRUCTIONS,
            "test module too small ({total_insts} insts) to exercise the parallel branch"
        );
        let solver = SolverKind::Scc.solver();
        let run = |jobs: Jobs| {
            ModuleSummaries::compute(
                &m,
                &ranges,
                GenConfig::default(),
                &index,
                solver,
                LatticeBackend::Auto,
                jobs,
            )
        };
        let serial = run(Jobs::parse("1").unwrap());
        for n in ["2", "4", "7"] {
            let parallel = run(Jobs::parse(n).unwrap());
            // Full struct equality: summaries AND stats (solves included —
            // the per-worker counters must reduce to the serial total).
            assert_eq!(serial, parallel, "jobs={n} diverged from jobs=1");
        }
        assert!(serial.facts() > 0, "the wide module must prove some facts");
        assert_eq!(serial.stats.recursive_sccs, 1);
    }

    #[test]
    fn solver_strategies_distil_identical_summaries() {
        let src = r#"
            int next(int i) { return i + 1; }
            int* skipr(int* p, int n) {
                if (n <= 0) { return p + 1; }
                return skipr(p + 1, n - 1);
            }
            int main() { int a[8]; int* q = skipr(a, next(1)); return *q; }
        "#;
        let mut m = sraa_minic::compile(src).unwrap();
        let (ranges, _) = sraa_essa::transform_module(&mut m);
        let index = VarIndex::new(&m);
        let a = ModuleSummaries::compute(
            &m,
            &ranges,
            GenConfig::default(),
            &index,
            SolverKind::Scc.solver(),
            LatticeBackend::Auto,
            Jobs::default(),
        );
        let b = ModuleSummaries::compute(
            &m,
            &ranges,
            GenConfig::default(),
            &index,
            SolverKind::Worklist.solver(),
            LatticeBackend::Auto,
            Jobs::default(),
        );
        assert_eq!(a, b);
    }
}
