//! The Pentagon abstract state: `Value → (interval, strict upper bounds)`.
//!
//! A pentagon (Logozzo & Fähndrich) abstracts a concrete store `Σ` by two
//! maps: `b(x)` — an interval containing `Σ(x)` — and `s(x)` — a set of
//! variables known to be *strictly greater* than `x` (`y ∈ s(x)` means
//! `Σ(x) < Σ(y)`). The name comes from the shape the two constraints
//! carve out of the plane.
//!
//! Only *bound* variables carry meaning: a variable absent from the state
//! has not been defined on every path reaching this program point, and in
//! strict SSA such a variable cannot be live here, so dropping it at joins
//! is sound. (This replaces ⊥/⊤ bookkeeping for not-yet-defined names.)
//!
//! The transfer functions maintain one crucial invariant of the *dense*
//! setting: a variable redefined by re-executing its instruction (a loop)
//! denotes a **new** dynamic value, so [`PentagonState::purge`] first
//! erases every stale fact about the name — its own bindings and its
//! occurrences inside other variables' `s` sets. The sparse analysis of
//! the paper gets this for free from live-range splitting; paying for it
//! explicitly on every transfer is precisely the engineering cost the
//! paper's Section 5 attributes to Pentagons.

use sraa_ir::Value;
use sraa_range::{Bound, Interval};
use std::collections::{BTreeMap, BTreeSet};

/// A value's facts captured by [`PentagonState::snapshot`], applied with
/// [`PentagonState::bind_snapshot`].
#[derive(Clone, Debug)]
pub struct ValueSnapshot {
    /// The value's interval (`None` if it was unbound).
    interval: Option<Interval>,
    /// Names strictly above the value.
    above: BTreeSet<Value>,
    /// Names strictly below the value (those whose `s` sets held it).
    below: BTreeSet<Value>,
}

/// One program-point abstract state of the Pentagon analysis.
///
/// `BTreeMap`s keep iteration deterministic, which makes fixpoints (and
/// test failures) reproducible.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PentagonState {
    /// `b(x)`: an interval containing the run-time value of `x`.
    intervals: BTreeMap<Value, Interval>,
    /// `s(x)`: variables strictly greater than `x`.
    subs: BTreeMap<Value, BTreeSet<Value>>,
}

impl PentagonState {
    /// The empty state (function entry: nothing bound yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `v` is bound (defined on every path reaching this point).
    pub fn binds(&self, v: Value) -> bool {
        self.intervals.contains_key(&v)
    }

    /// The interval of `v`; ⊤ if bound without range facts.
    ///
    /// Returns `None` when `v` is not bound at this point.
    pub fn interval(&self, v: Value) -> Option<Interval> {
        self.intervals.get(&v).copied()
    }

    /// The strict upper bounds of `v` (empty if none recorded).
    pub fn upper_bounds(&self, v: Value) -> impl Iterator<Item = Value> + '_ {
        self.subs.get(&v).into_iter().flatten().copied()
    }

    /// Number of bound variables (the dense analysis' footprint metric).
    pub fn num_bound(&self) -> usize {
        self.intervals.len()
    }

    /// Does this state prove `a < b`?
    ///
    /// Either relationally (`b ∈ s(a)`) or numerically
    /// (`hi(a) < lo(b)`). Both variables must be bound.
    pub fn proves_lt(&self, a: Value, b: Value) -> bool {
        if a == b {
            return false;
        }
        if self.subs.get(&a).is_some_and(|s| s.contains(&b)) {
            return true;
        }
        match (self.intervals.get(&a), self.intervals.get(&b)) {
            (Some(ia), Some(ib)) => match (ia.hi(), ib.lo()) {
                (Bound::Fin(ha), Bound::Fin(lb)) => ha < lb,
                _ => false,
            },
            _ => false,
        }
    }

    /// Binds `v` to `interval` with no order facts, erasing stale facts
    /// about the name first (see the module docs on redefinition).
    pub fn bind(&mut self, v: Value, interval: Interval) {
        self.purge(v);
        self.intervals.insert(v, interval);
    }

    /// Binds `v` as a fresh name equal to `src`: same interval, same
    /// upper bounds, and every variable below `src` is also below `v`.
    pub fn bind_equal(&mut self, v: Value, src: Value) {
        self.purge(v);
        let interval = self.interval(src).unwrap_or(Interval::TOP);
        let bounds = self.subs.get(&src).cloned().unwrap_or_default();
        self.intervals.insert(v, interval);
        if !bounds.is_empty() {
            self.subs.insert(v, bounds);
        }
        // w < src ⇒ w < v.
        for s in self.subs.values_mut() {
            if s.contains(&src) {
                s.insert(v);
            }
        }
    }

    /// Records `a < b`, transitively: `s(a) ∪= {b} ∪ s(b)` and, for every
    /// `w` with `a ∈ s(w)` (that is, `w < a`), `s(w) ∪= {b} ∪ s(b)`.
    pub fn record_lt(&mut self, a: Value, b: Value) {
        if a == b {
            return;
        }
        let mut gained: BTreeSet<Value> = self.subs.get(&b).cloned().unwrap_or_default();
        gained.insert(b);
        gained.remove(&a); // never record a < a
        for (&w, s) in self.subs.iter_mut() {
            if s.contains(&a) && w != b {
                s.extend(gained.iter().copied().filter(|&g| g != w));
            }
        }
        let sa = self.subs.entry(a).or_default();
        sa.extend(gained);
    }

    /// Records `a ≤ b`: everything above `b` is above `a`, and everything
    /// below `a` is below `b`.
    pub fn record_le(&mut self, a: Value, b: Value) {
        if a == b {
            return;
        }
        let above_b: BTreeSet<Value> = self.subs.get(&b).cloned().unwrap_or_default();
        let mut gained = above_b;
        gained.insert(b);
        for (&w, s) in self.subs.iter_mut() {
            if s.contains(&a) && w != b {
                // w < a ≤ b ⇒ w < b (and w < anything above b).
                s.extend(gained.iter().copied().filter(|&g| g != w));
            }
        }
        // a ≤ b < u ⇒ a < u (but NOT a < b).
        let above_b_only: Vec<Value> = self
            .subs
            .get(&b)
            .map(|s| s.iter().copied().filter(|&u| u != a).collect())
            .unwrap_or_default();
        if !above_b_only.is_empty() {
            self.subs.entry(a).or_default().extend(above_b_only);
        }
    }

    /// Narrows the interval of `v` by `bound` (meet). Returns `false` if
    /// the result is empty — the program point is unreachable under this
    /// refinement (an infeasible branch edge).
    #[must_use]
    pub fn refine_interval(&mut self, v: Value, bound: Interval) -> bool {
        match self.intervals.get_mut(&v) {
            Some(iv) => {
                *iv = iv.meet(&bound);
                !iv.is_bottom()
            }
            None => true, // unbound: nothing to refine
        }
    }

    /// Captures everything the state knows about `u`, for a later
    /// [`bind_snapshot`](Self::bind_snapshot). Used to give φ-functions
    /// their *parallel* copy semantics: all incoming values are read in
    /// the pre-edge state before any φ is rebound.
    pub fn snapshot(&self, u: Value) -> ValueSnapshot {
        ValueSnapshot {
            interval: self.interval(u),
            above: self.subs.get(&u).cloned().unwrap_or_default(),
            below: self.subs.iter().filter(|(_, s)| s.contains(&u)).map(|(&w, _)| w).collect(),
        }
    }

    /// Binds `v` as a fresh name equal to the snapshotted value, skipping
    /// any names in `stale` (φs of the same block that were rebound in
    /// parallel — their snapshot-time values no longer exist).
    pub fn bind_snapshot(&mut self, v: Value, snap: &ValueSnapshot, stale: &BTreeSet<Value>) {
        let Some(interval) = snap.interval else {
            // The source was unbound (unreachable/partial path): v stays
            // unbound rather than inheriting vacuous facts.
            return;
        };
        self.intervals.insert(v, interval);
        let above: BTreeSet<Value> = snap
            .above
            .iter()
            .copied()
            .filter(|u| !stale.contains(u) && *u != v && self.binds(*u))
            .collect();
        if !above.is_empty() {
            self.subs.insert(v, above);
        }
        for &w in &snap.below {
            if !stale.contains(&w) && w != v && self.binds(w) {
                self.subs.entry(w).or_default().insert(v);
            }
        }
    }

    /// Erases every fact about `v`: its own bindings and its occurrences
    /// in other variables' upper-bound sets.
    pub fn purge(&mut self, v: Value) {
        self.intervals.remove(&v);
        self.subs.remove(&v);
        self.subs.retain(|_, s| {
            s.remove(&v);
            !s.is_empty()
        });
    }

    /// Join (least upper bound): keeps variables bound on *both* sides,
    /// hulls their intervals, and — following Logozzo & Fähndrich's
    /// refined pentagon join — keeps `y ∈ s'(x)` when **each** side
    /// proves `x < y` by its own means, relationally *or* numerically.
    /// A plain pairwise set intersection would lose facts like
    /// "`[0,0] < [1,1]` on the first loop iteration, `j ∈ s(i)` on the
    /// back edge", which is precisely the case loop headers hit.
    pub fn join(&self, other: &PentagonState) -> PentagonState {
        self.merge(other, Interval::join)
    }

    /// Widening join for loop heads: like [`join`](Self::join) but bounds
    /// that grew jump to ±∞, guaranteeing termination on the
    /// infinite-height interval lattice. The upper-bound component needs
    /// no widening: the set of provable order facts only shrinks under
    /// joins and it is finite.
    pub fn widen(&self, other: &PentagonState) -> PentagonState {
        self.merge(other, Interval::widen)
    }

    fn merge(
        &self,
        other: &PentagonState,
        combine: impl Fn(&Interval, &Interval) -> Interval,
    ) -> PentagonState {
        let mut intervals = BTreeMap::new();
        for (&v, ia) in &self.intervals {
            if let Some(ib) = other.intervals.get(&v) {
                intervals.insert(v, combine(ia, ib));
            }
        }
        let mut subs = BTreeMap::new();
        for &v in intervals.keys() {
            // Candidates: anything either side relates to `v`. Facts both
            // sides prove only numerically survive in the joined
            // *intervals* when they stay disjoint, so they need no entry.
            let kept: BTreeSet<Value> = self
                .subs
                .get(&v)
                .into_iter()
                .chain(other.subs.get(&v))
                .flatten()
                .copied()
                .filter(|u| intervals.contains_key(u))
                .filter(|&u| self.proves_lt(v, u) && other.proves_lt(v, u))
                .collect();
            if !kept.is_empty() {
                subs.insert(v, kept);
            }
        }
        PentagonState { intervals, subs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Value {
        Value::from_index(i)
    }

    #[test]
    fn proves_lt_via_upper_bounds() {
        let mut st = PentagonState::new();
        st.bind(v(0), Interval::TOP);
        st.bind(v(1), Interval::TOP);
        st.record_lt(v(0), v(1));
        assert!(st.proves_lt(v(0), v(1)));
        assert!(!st.proves_lt(v(1), v(0)));
        assert!(!st.proves_lt(v(0), v(0)));
    }

    #[test]
    fn proves_lt_via_intervals() {
        let mut st = PentagonState::new();
        st.bind(v(0), Interval::finite(0, 5));
        st.bind(v(1), Interval::finite(6, 9));
        assert!(st.proves_lt(v(0), v(1)));
        assert!(!st.proves_lt(v(1), v(0)));
        // Touching intervals do not prove strictness.
        st.bind(v(2), Interval::finite(5, 9));
        assert!(!st.proves_lt(v(0), v(2)));
    }

    #[test]
    fn record_lt_is_transitive_both_ways() {
        let mut st = PentagonState::new();
        for i in 0..4 {
            st.bind(v(i), Interval::TOP);
        }
        st.record_lt(v(1), v(2)); // 1 < 2
        st.record_lt(v(0), v(1)); // 0 < 1 (downward: 0 < 2 too)
        assert!(st.proves_lt(v(0), v(2)), "0 < 1 < 2");
        st.record_lt(v(2), v(3)); // upward: 0 < 3 and 1 < 3
        assert!(st.proves_lt(v(1), v(3)));
        assert!(st.proves_lt(v(0), v(3)));
    }

    #[test]
    fn record_le_gains_strict_facts_through_chains() {
        let mut st = PentagonState::new();
        for i in 0..3 {
            st.bind(v(i), Interval::TOP);
        }
        st.record_lt(v(1), v(2)); // 1 < 2
        st.record_le(v(0), v(1)); // 0 ≤ 1
        assert!(st.proves_lt(v(0), v(2)), "0 ≤ 1 < 2 ⇒ 0 < 2");
        assert!(!st.proves_lt(v(0), v(1)), "≤ alone must not prove <");
    }

    #[test]
    fn bind_equal_copies_both_directions() {
        let mut st = PentagonState::new();
        st.bind(v(0), Interval::finite(1, 3));
        st.bind(v(1), Interval::TOP);
        st.bind(v(2), Interval::TOP);
        st.record_lt(v(0), v(1)); // 0 < 1
        st.record_lt(v(2), v(0)); // 2 < 0
        st.bind_equal(v(3), v(0)); // 3 := 0
        assert!(st.proves_lt(v(3), v(1)), "copy inherits upper bounds");
        assert!(st.proves_lt(v(2), v(3)), "copy joins others' bound sets");
        assert_eq!(st.interval(v(3)), Some(Interval::finite(1, 3)));
    }

    #[test]
    fn purge_erases_all_occurrences() {
        let mut st = PentagonState::new();
        st.bind(v(0), Interval::TOP);
        st.bind(v(1), Interval::TOP);
        st.record_lt(v(0), v(1));
        st.purge(v(1));
        assert!(!st.proves_lt(v(0), v(1)));
        assert!(!st.binds(v(1)));
        // Rebinding starts clean.
        st.bind(v(1), Interval::constant(7));
        assert!(!st.proves_lt(v(0), v(1)));
    }

    #[test]
    fn rebind_invalidates_stale_facts() {
        let mut st = PentagonState::new();
        st.bind(v(0), Interval::TOP);
        st.bind(v(1), Interval::TOP);
        st.record_lt(v(0), v(1)); // iteration k: 0 < 1
        st.bind(v(0), Interval::TOP); // iteration k+1 redefines v0
        assert!(!st.proves_lt(v(0), v(1)), "new value of v0 is unrelated");
    }

    #[test]
    fn join_keeps_common_facts_only() {
        let mut a = PentagonState::new();
        a.bind(v(0), Interval::finite(0, 4));
        a.bind(v(1), Interval::TOP);
        a.record_lt(v(0), v(1));
        let mut b = PentagonState::new();
        b.bind(v(0), Interval::finite(2, 9));
        b.bind(v(1), Interval::TOP);
        b.record_lt(v(0), v(1));
        b.bind(v(2), Interval::constant(1)); // only on one path

        let j = a.join(&b);
        assert_eq!(j.interval(v(0)), Some(Interval::finite(0, 9)));
        assert!(j.proves_lt(v(0), v(1)), "fact on both paths survives");
        assert!(!j.binds(v(2)), "one-path binding is dropped");

        let mut c = b.clone();
        c.purge(v(0));
        c.bind(v(0), Interval::finite(2, 9));
        let j2 = a.join(&c);
        assert!(!j2.proves_lt(v(0), v(1)), "fact on one path is dropped");
    }

    #[test]
    fn widen_jumps_growing_bounds_to_infinity() {
        let mut a = PentagonState::new();
        a.bind(v(0), Interval::finite(0, 4));
        let mut b = PentagonState::new();
        b.bind(v(0), Interval::finite(0, 5));
        let w = a.widen(&b);
        let iv = w.interval(v(0)).unwrap();
        assert_eq!(iv.lo(), Bound::Fin(0));
        assert_eq!(iv.hi(), Bound::PosInf, "growing hi must widen");
    }

    #[test]
    fn refine_interval_detects_infeasible_edges() {
        let mut st = PentagonState::new();
        st.bind(v(0), Interval::finite(0, 3));
        assert!(st.refine_interval(v(0), Interval::finite(2, 10)));
        assert_eq!(st.interval(v(0)), Some(Interval::finite(2, 3)));
        assert!(!st.refine_interval(v(0), Interval::finite(7, 9)), "empty meet = infeasible");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A random state over a small universe: every variable gets a
        /// finite interval, plus a handful of recorded order facts.
        fn states(n: usize) -> impl Strategy<Value = PentagonState> {
            let intervals = proptest::collection::vec((-20i64..20, 0i64..10), n);
            let facts = proptest::collection::vec((0..n, 0..n), 0..6);
            (intervals, facts).prop_map(move |(ivs, facts)| {
                let mut st = PentagonState::new();
                for (i, (lo, width)) in ivs.into_iter().enumerate() {
                    st.bind(v(i), Interval::finite(lo, lo + width));
                }
                for (a, b) in facts {
                    if a != b {
                        st.record_lt(v(a), v(b));
                    }
                }
                st
            })
        }

        proptest! {
            /// The join is sound: it proves a fact only if *both* inputs
            /// prove it (each by its own means) — the pentagon lub.
            #[test]
            fn join_proves_only_common_facts(
                a in states(6), b in states(6)
            ) {
                let j = a.join(&b);
                for x in 0..6 {
                    for y in 0..6 {
                        if j.proves_lt(v(x), v(y)) {
                            prop_assert!(a.proves_lt(v(x), v(y)),
                                "join proves {x}<{y}, left input does not");
                            prop_assert!(b.proves_lt(v(x), v(y)),
                                "join proves {x}<{y}, right input does not");
                        }
                    }
                }
            }

            /// Joined intervals are upper bounds of both inputs.
            #[test]
            fn join_intervals_are_hulls(a in states(4), b in states(4)) {
                let j = a.join(&b);
                for x in 0..4 {
                    let (ia, ib, ij) = (
                        a.interval(v(x)).unwrap(),
                        b.interval(v(x)).unwrap(),
                        j.interval(v(x)).unwrap(),
                    );
                    prop_assert_eq!(ij.join(&ia), ij, "join ⊉ left");
                    prop_assert_eq!(ij.join(&ib), ij, "join ⊉ right");
                }
            }

            /// Widening is coarser than (or equal to) the join, and it
            /// proves no fact the join does not prove.
            #[test]
            fn widen_is_coarser_than_join(a in states(4), b in states(4)) {
                let j = a.join(&b);
                let w = a.widen(&b);
                for x in 0..4 {
                    let (ij, iw) =
                        (j.interval(v(x)).unwrap(), w.interval(v(x)).unwrap());
                    prop_assert_eq!(iw.join(&ij), iw, "widen ⊉ join");
                    for y in 0..4 {
                        if w.proves_lt(v(x), v(y)) {
                            prop_assert!(j.proves_lt(v(x), v(y)));
                        }
                    }
                }
            }

            /// `purge` erases every trace of a name.
            #[test]
            fn purge_removes_every_mention(st in states(6), victim in 0usize..6) {
                let mut st = st;
                st.purge(v(victim));
                prop_assert!(!st.binds(v(victim)));
                for x in 0..6 {
                    prop_assert!(!st.proves_lt(v(x), v(victim)));
                    prop_assert!(!st.proves_lt(v(victim), v(x)));
                    prop_assert!(
                        st.upper_bounds(v(x)).all(|u| u != v(victim)),
                        "stale bound on {x}"
                    );
                }
            }

            /// `bind_equal` makes the copy provably interchangeable with
            /// its source against every third variable.
            #[test]
            fn bind_equal_is_transparent(st in states(5)) {
                let mut st = st;
                let (src, copy) = (v(0), v(5));
                st.bind_equal(copy, src);
                for x in 1..5 {
                    prop_assert_eq!(
                        st.proves_lt(v(x), copy), st.proves_lt(v(x), src),
                        "below: copy disagrees with source on {}", x
                    );
                    prop_assert_eq!(
                        st.proves_lt(copy, v(x)), st.proves_lt(src, v(x)),
                        "above: copy disagrees with source on {}", x
                    );
                }
            }
        }
    }

    #[test]
    fn join_drops_bounds_on_unbound_values() {
        // v1 ∈ s(v0) but v1 is bound on only one side: the join must not
        // keep a dangling upper bound.
        let mut a = PentagonState::new();
        a.bind(v(0), Interval::TOP);
        a.bind(v(1), Interval::TOP);
        a.record_lt(v(0), v(1));
        let mut b = PentagonState::new();
        b.bind(v(0), Interval::TOP);
        b.bind(v(1), Interval::TOP);
        b.record_lt(v(0), v(1));
        b.purge(v(1));
        b.bind(v(1), Interval::TOP); // rebound: no facts
        let j = a.join(&b);
        assert!(!j.proves_lt(v(0), v(1)));
    }
}
