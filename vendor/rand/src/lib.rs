//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of the `rand` 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range` / `gen_bool` over integer ranges.
//!
//! `StdRng` here is SplitMix64 rather than ChaCha12: deterministic per
//! seed, statistically fine for workload synthesis, but NOT the same
//! stream as the real crate — regenerated workloads differ from ones
//! produced with crates.io `rand`, which is acceptable because all
//! seeded generation in this workspace is self-contained.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support. Only `seed_from_u64` is provided; the full
/// byte-array `from_seed` entry point is not used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        // 53 uniform mantissa bits, same construction as rand's f64 sampling.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types uniform sampling is defined for. The blanket
/// `SampleRange` impls below are generic over this trait so that type
/// inference can unify the range's element type with the return type
/// before integer-literal fallback kicks in (matching real rand, where
/// `SampleRange` has blanket impls over `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    fn widen(self) -> i128;
    fn narrow(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn widen(self) -> i128 {
                self as i128
            }
            fn narrow(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

fn sample_span<T: SampleUniform, R: RngCore + ?Sized>(start: T, span: u128, rng: &mut R) -> T {
    let v = rng.next_u64() as u128 % span;
    T::narrow(start.widen() + v as i128)
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end.widen() - self.start.widen()) as u128;
        sample_span(self.start, span, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = (end.widen() - start.widen()) as u128 + 1;
        sample_span(start, span, rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit PRNG (SplitMix64). See the crate docs for how
    /// this differs from the real `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50..50);
            assert!((-50..50).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let w = rng.gen_range(1..=8u8);
            assert!((1..=8).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.9)).count();
        assert!(hits > 8_500 && hits <= 10_000, "p=0.9 produced {hits}/10000");
    }
}
