//! A dense fixed-universe bit set.
//!
//! Used for liveness sets and as one of the two representations of the
//! less-than sets in the solver. Keeping it here (rather than pulling in an
//! external crate) keeps the workspace dependency-light and lets the solver
//! iterate set bits without allocation.

/// A set of `usize` elements drawn from a fixed universe `0..len`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// Creates a full set over the universe `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for (i, w) in s.words.iter_mut().enumerate() {
            let lo = i * 64;
            let n = len.saturating_sub(lo).min(64);
            *w = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        }
        s
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Tests membership.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "{i} outside universe {}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "{i} outside universe {}", self.len);
        let w = &mut self.words[i / 64];
        let bit = 1 << (i % 64);
        let was = *w & bit != 0;
        *w |= bit;
        !was
    }

    /// Removes `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "{i} outside universe {}", self.len);
        let w = &mut self.words[i / 64];
        let bit = 1 << (i % 64);
        let was = *w & bit != 0;
        *w &= !bit;
        was
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// In-place intersection; returns `true` if `self` changed.
    pub fn intersect_with(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// In-place difference (`self \ other`); returns `true` if changed.
    pub fn difference_with(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & !b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates over set elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, word_idx: 0, bits: self.words.first().copied().unwrap_or(0) }
    }
}

/// A matrix of fixed-width bit rows over one contiguous `u64` arena.
///
/// This is the row-major companion of [`DenseBitSet`]: `rows` sets drawn
/// from one universe `0..universe`, all sharing a single allocation so a
/// solver iterating a strongly connected component touches one cache-warm
/// block instead of per-set allocations. Rows are exposed as raw `&[u64]`
/// words so callers can run word-parallel union/intersection between rows
/// (via a scratch row — two rows of the same matrix cannot be borrowed
/// mutably at once).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    universe: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// An all-empty matrix of `rows` sets over the universe `0..universe`.
    pub fn new(rows: usize, universe: usize) -> Self {
        let words_per_row = universe.div_ceil(64);
        Self { rows, universe, words_per_row, words: vec![0; words_per_row * rows] }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Universe size shared by every row.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Words backing each row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Row `r` as raw words (bit `i` of the row ↔ element `i`).
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        assert!(r < self.rows, "row {r} out of {}", self.rows);
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Mutable raw words of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        assert!(r < self.rows, "row {r} out of {}", self.rows);
        &mut self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Inserts element `i` into row `r`; returns `true` if newly inserted.
    #[inline]
    pub fn insert(&mut self, r: usize, i: usize) -> bool {
        assert!(i < self.universe, "{i} outside universe {}", self.universe);
        let w = &mut self.row_mut(r)[i / 64];
        let bit = 1u64 << (i % 64);
        let was = *w & bit != 0;
        *w |= bit;
        !was
    }

    /// Tests membership of element `i` in row `r`.
    #[inline]
    pub fn contains(&self, r: usize, i: usize) -> bool {
        assert!(i < self.universe, "{i} outside universe {}", self.universe);
        self.row(r)[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Elements of row `r` in increasing order.
    pub fn row_elems(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(r).iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + tz)
            })
        })
    }
}

/// Iterator over the elements of a [`DenseBitSet`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a DenseBitSet,
    word_idx: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word_idx * 64 + tz);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a DenseBitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = DenseBitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
    }

    #[test]
    fn full_has_everything_and_nothing_more() {
        for n in [0usize, 1, 63, 64, 65, 128, 200] {
            let s = DenseBitSet::full(n);
            assert_eq!(s.count(), n, "universe {n}");
            assert_eq!(s.iter().collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn set_algebra() {
        let mut a = DenseBitSet::new(100);
        let mut b = DenseBitSet::new(100);
        for i in [1usize, 5, 64, 70] {
            a.insert(i);
        }
        for i in [5usize, 64, 99] {
            b.insert(i);
        }
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 5, 64, 70, 99]);
        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![5, 64]);
        let mut d = a.clone();
        assert!(d.difference_with(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 70]);
        assert!(!a.union_with(&i), "union with subset must not change the set");
    }

    #[test]
    fn bit_matrix_rows_are_independent_sets() {
        let mut m = BitMatrix::new(3, 130);
        assert!(m.insert(0, 0));
        assert!(m.insert(0, 129));
        assert!(!m.insert(0, 0), "re-insert reports no change");
        assert!(m.insert(2, 64));
        assert!(m.contains(0, 0) && m.contains(0, 129) && m.contains(2, 64));
        assert!(!m.contains(1, 0) && !m.contains(0, 64));
        assert_eq!(m.row_elems(0).collect::<Vec<_>>(), vec![0, 129]);
        assert_eq!(m.row_elems(1).count(), 0);
        assert_eq!(m.row_elems(2).collect::<Vec<_>>(), vec![64]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.universe(), 130);
        assert_eq!(m.words_per_row(), 3);
    }

    #[test]
    fn bit_matrix_word_rows_support_bulk_ops() {
        let mut m = BitMatrix::new(2, 100);
        for i in [1usize, 5, 64, 70] {
            m.insert(0, i);
        }
        for i in [5usize, 64, 99] {
            m.insert(1, i);
        }
        // Word-parallel union via a scratch row, the solver's access pattern.
        let mut scratch: Vec<u64> = m.row(0).to_vec();
        for (a, b) in scratch.iter_mut().zip(m.row(1)) {
            *a |= b;
        }
        m.row_mut(0).copy_from_slice(&scratch);
        assert_eq!(m.row_elems(0).collect::<Vec<_>>(), vec![1, 5, 64, 70, 99]);
    }

    #[test]
    fn bit_matrix_zero_universe() {
        let m = BitMatrix::new(4, 0);
        assert_eq!(m.row(3), &[] as &[u64]);
        assert_eq!(m.row_elems(0).count(), 0);
    }

    #[test]
    fn iter_on_empty() {
        let s = DenseBitSet::new(0);
        assert_eq!(s.iter().count(), 0);
        let s = DenseBitSet::new(64);
        assert_eq!(s.iter().count(), 0);
    }

    proptest! {
        #[test]
        fn matches_reference_impl(ops in proptest::collection::vec((0usize..200, any::<bool>()), 0..300)) {
            let mut s = DenseBitSet::new(200);
            let mut reference = std::collections::BTreeSet::new();
            for (i, add) in ops {
                if add {
                    prop_assert_eq!(s.insert(i), reference.insert(i));
                } else {
                    prop_assert_eq!(s.remove(i), reference.remove(&i));
                }
            }
            prop_assert_eq!(s.iter().collect::<Vec<_>>(), reference.into_iter().collect::<Vec<_>>());
        }

        #[test]
        fn union_intersection_laws(xs in proptest::collection::btree_set(0usize..128, 0..60),
                                   ys in proptest::collection::btree_set(0usize..128, 0..60)) {
            let mut a = DenseBitSet::new(128);
            let mut b = DenseBitSet::new(128);
            xs.iter().for_each(|&i| { a.insert(i); });
            ys.iter().for_each(|&i| { b.insert(i); });
            let mut u = a.clone();
            u.union_with(&b);
            let mut i = a.clone();
            i.intersect_with(&b);
            // |A∪B| + |A∩B| = |A| + |B|
            prop_assert_eq!(u.count() + i.count(), a.count() + b.count());
            // A∩B ⊆ A ⊆ A∪B
            for e in i.iter() { prop_assert!(a.contains(e)); }
            for e in a.iter() { prop_assert!(u.contains(e)); }
        }
    }
}
