//! End-to-end differential test of the two fixpoint strategies, raw and
//! through the `DisambiguationEngine`.
//!
//! The paper's §6 leaves solver speed as an open problem;
//! `sraa_core::solve_fast` (SCC condensation, see DESIGN.md §"Beyond the
//! paper") answers it. Here both solvers run on the *real* constraint
//! systems of the evaluation corpus — all 16 calibrated SPEC workloads
//! plus a population of Csmith-style random programs — and must produce
//! identical less-than sets for every variable. The engine-level tests
//! then prove the property that makes `SolverKind` a pure performance
//! knob: swapping the strategy changes no query answer anywhere in the
//! stack, and repeated runs are byte-identical (no hash-iteration
//! nondeterminism).

use sraa_alias::{AaEval, AliasAnalysis, StrictInequalityAa};
use sraa_core::{
    generate, solve, solve_fast, DisambiguationEngine, EngineConfig, GenConfig, LatticeBackend,
    SolverKind, VarId,
};
use sraa_synth::{csmith_generate, spec_all, CsmithConfig};

fn assert_solvers_agree(source: &str, name: &str) {
    let mut module =
        sraa_minic::compile(source).unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    let (ranges, _) = sraa_essa::transform_module(&mut module);
    let sys = generate(&module, &ranges, GenConfig::default());

    let base = solve(&sys.constraints, sys.num_vars);
    let fast = solve_fast(&sys.constraints, sys.num_vars);

    for x in 0..sys.num_vars {
        let x = VarId::from_index(x);
        assert_eq!(base.lt_set(x), fast.lt_set(x), "{name}: solvers disagree on variable {x}");
        assert_eq!(base.was_top(x), fast.was_top(x), "{name}: frozen sets differ on {x}");
    }
    assert_eq!(base.stats.frozen_tops, fast.stats.frozen_tops, "{name}: frozen-⊤ counts differ");
    assert!(
        fast.stats.pops <= base.stats.pops,
        "{name}: fast solver did more work ({} evals vs {} pops)",
        fast.stats.pops,
        base.stats.pops
    );
}

/// Both strategies, end to end through the engine: identical alias
/// verdicts on every pointer pair of every function.
fn assert_engine_strategies_agree(source: &str, name: &str) {
    let build = |kind: SolverKind| {
        let mut m =
            sraa_minic::compile(source).unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
        let engine = DisambiguationEngine::build(
            &mut m,
            EngineConfig { solver: kind, ..Default::default() },
        );
        (m, engine)
    };
    let (m_scc, scc) = build(SolverKind::Scc);
    let (m_wl, wl) = build(SolverKind::Worklist);
    assert_eq!(m_scc, m_wl, "{name}: the e-SSA pipeline must be deterministic");

    for (fid, f) in m_scc.functions() {
        let ptrs = AaEval::pointer_values(&m_scc, fid);
        assert_eq!(
            scc.no_alias_pairs(f, fid, &ptrs),
            wl.no_alias_pairs(f, fid, &ptrs),
            "{name}: strategies disagree on the no-alias pairs of {}",
            f.name
        );
        for v in f.value_ids() {
            assert_eq!(scc.lt_set(fid, v), wl.lt_set(fid, v), "{name}: LT({v}) differs");
        }
    }
    // Identical precision through the AliasAnalysis adapter too.
    let scc_aa = StrictInequalityAa::from_engine(scc);
    let wl_aa = StrictInequalityAa::from_engine(wl);
    let out = AaEval::run(&m_scc, &[&scc_aa as &dyn AliasAnalysis, &wl_aa]);
    assert_eq!(out[0].no_alias, out[1].no_alias, "{name}: aa-eval tallies differ");
    assert_eq!(out[0].may_alias, out[1].may_alias);
    assert_eq!(out[0].must_alias, out[1].must_alias);
}

#[test]
fn solvers_agree_on_all_spec_workloads() {
    for w in spec_all() {
        assert_solvers_agree(&w.source, &w.name);
    }
}

#[test]
fn solvers_agree_on_csmith_population() {
    for seed in 0..24 {
        let cfg = CsmithConfig {
            seed: 9_000 + seed,
            max_ptr_depth: (2 + seed % 6) as u8,
            num_stmts: 30 + (seed as usize % 4) * 15,
            helpers: 0,
        };
        let w = csmith_generate(cfg);
        assert_solvers_agree(&w.source, &w.name);
    }
}

#[test]
fn engine_strategies_agree_on_spec_corpus() {
    for w in spec_all().into_iter().take(6) {
        assert_engine_strategies_agree(&w.source, &w.name);
    }
}

#[test]
fn engine_strategies_agree_on_csmith_population() {
    for seed in 0..8 {
        let w = csmith_generate(CsmithConfig {
            seed: 17_000 + seed,
            max_ptr_depth: (2 + seed % 4) as u8,
            num_stmts: 40,
            helpers: 0,
        });
        assert_engine_strategies_agree(&w.source, &w.name);
    }
}

#[test]
fn solvers_agree_on_figure_1_programs() {
    let ins_sort = r#"
        void ins_sort(int* v, int N) {
            for (int i = 0; i < N - 1; i++) {
                for (int j = i + 1; j < N; j++) {
                    if (v[i] > v[j]) {
                        int tmp = v[i];
                        v[i] = v[j];
                        v[j] = tmp;
                    }
                }
            }
        }
    "#;
    let partition = r#"
        void partition(int* v, int N) {
            int i; int j; int p; int tmp;
            p = v[N / 2];
            for (i = 0, j = N - 1;; i++, j--) {
                while (v[i] < p) i++;
                while (p < v[j]) j--;
                if (i >= j) break;
                tmp = v[i];
                v[i] = v[j];
                v[j] = tmp;
            }
        }
    "#;
    assert_solvers_agree(ins_sort, "fig1a-ins_sort");
    assert_solvers_agree(partition, "fig1b-partition");
    assert_engine_strategies_agree(ins_sort, "fig1a-ins_sort");
    assert_engine_strategies_agree(partition, "fig1b-partition");
}

/// Renders every query answer an engine can give — no-alias pairs, LT
/// sets, deterministic stats, histogram — into one string, so that two
/// engines can be compared for *byte* equality, not just verdict
/// equality.
fn render_engine(source: &str, name: &str, cfg: EngineConfig) -> String {
    let mut m =
        sraa_minic::compile(source).unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    let engine = DisambiguationEngine::build(&mut m, cfg);
    let mut rendered = String::new();
    for (fid, f) in m.functions() {
        let ptrs = AaEval::pointer_values(&m, fid);
        rendered.push_str(&format!("{fid:?} {:?}\n", engine.no_alias_pairs(f, fid, &ptrs)));
        for v in f.value_ids() {
            let set = engine.lt_set(fid, v);
            if !set.is_empty() {
                rendered.push_str(&format!("{fid:?} {v}: {set:?}\n"));
            }
        }
    }
    let s = engine.stats();
    rendered.push_str(&format!(
        "{} {} {} {} {} {} {}\n{:?}",
        s.constraints,
        s.variables,
        s.pops,
        s.frozen_tops,
        s.sccs,
        s.cyclic_sccs,
        s.union_cycles,
        engine.size_histogram()
    ));
    rendered
}

/// The lattice backend is a pure storage knob: on both solver
/// strategies, Arc and Dense produce byte-identical output — same
/// verdicts, same sets, same pop counts, same histogram. `Auto` must
/// match too, since it only ever picks one of the two.
#[test]
fn lattice_backends_are_byte_identical_through_the_engine() {
    let workloads: Vec<_> = spec_all().into_iter().take(4).collect();
    for w in &workloads {
        for solver in SolverKind::ALL {
            let run = |lattice: LatticeBackend| {
                render_engine(
                    &w.source,
                    &w.name,
                    EngineConfig { solver, ..Default::default() }.with_lattice(lattice),
                )
            };
            let arc = run(LatticeBackend::Arc);
            for lattice in [LatticeBackend::Dense, LatticeBackend::Auto] {
                assert_eq!(
                    arc,
                    run(lattice),
                    "{}: {solver} output differs between arc and {lattice:?}",
                    w.name
                );
            }
        }
    }
}

/// Same property on the interprocedural path: summaries + final solve
/// both run under the configured backend.
#[test]
fn lattice_backends_agree_in_summaries_mode() {
    for w in sraa_synth::call_suite(4) {
        let run = |lattice: LatticeBackend| {
            render_engine(
                &w.source,
                &w.name,
                EngineConfig::default().with_summaries().with_lattice(lattice),
            )
        };
        assert_eq!(run(LatticeBackend::Arc), run(LatticeBackend::Dense), "{}", w.name);
    }
}

/// Repeated runs of the full pipeline must be byte-identical: the solved
/// sets iterate in sorted `VarId` order and no `HashSet` iteration leaks
/// into results or statistics.
#[test]
fn repeated_runs_are_deterministic() {
    let w = spec_all().into_iter().next().expect("spec corpus is non-empty");
    let run = |kind: SolverKind| {
        let mut m = sraa_minic::compile(&w.source).unwrap();
        let engine = DisambiguationEngine::build(
            &mut m,
            EngineConfig { solver: kind, ..Default::default() },
        );
        let mut rendered = String::new();
        for (fid, f) in m.functions() {
            for v in f.value_ids() {
                let set = engine.lt_set(fid, v);
                if !set.is_empty() {
                    rendered.push_str(&format!("{fid:?} {v}: {set:?}\n"));
                }
            }
        }
        // Deterministic stats only: the per-phase wall-clock fields
        // (`summary_build_ns` / `final_solve_ns`) vary run to run by
        // design and are likewise excluded from `SolveStats` equality.
        let s = engine.stats();
        rendered.push_str(&format!(
            "{} {} {} {} {} {} {} {} {} {}\n{:?}",
            s.constraints,
            s.variables,
            s.pops,
            s.frozen_tops,
            s.sccs,
            s.cyclic_sccs,
            s.union_cycles,
            s.cache_hits,
            s.cache_misses,
            s.cache_invalidated,
            engine.size_histogram()
        ));
        rendered
    };
    for kind in SolverKind::ALL {
        let first = run(kind);
        for _ in 0..2 {
            assert_eq!(first, run(kind), "{kind} run is nondeterministic");
        }
    }
}
