//! Figure 9 — the SPEC CPU 2006 precision table: per benchmark, the total
//! query count and the percentage of no-alias answers for BA, LT and
//! BA+LT. Rows where LT lifts BA by ≥ 10 percentage points are flagged
//! with `*`, matching the highlighting of the paper's table.

use sraa_bench::Prepared;

fn main() {
    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>9}  flag",
        "benchmark", "# queries", "BA", "LT", "BA+LT"
    );
    for w in sraa_synth::spec_all() {
        let p = Prepared::new(&w);
        let out = p.eval(&[&p.ba, &p.lt, &p.ba_plus_lt()]);
        let (ba, lt, both) = (&out[0], &out[1], &out[2]);
        // The paper highlights benchmarks where LT increases BA's
        // precision "by 10% or higher" — a relative gain; with that
        // reading its four highlighted rows (lbm, milc, bzip2, gobmk)
        // match the table.
        let rel_gain = (both.no_alias_rate() - ba.no_alias_rate()) / ba.no_alias_rate().max(1e-9);
        let flag = if rel_gain >= 0.10 { "*" } else { "" };
        println!(
            "{:<12} {:>10} {:>7.2}% {:>7.2}% {:>8.2}%  {}",
            p.name,
            ba.total(),
            ba.no_alias_rate(),
            lt.no_alias_rate(),
            both.no_alias_rate(),
            flag
        );
    }
    println!();
    println!("(*) = LT raises BA's precision by 10% or more,");
    println!("      the paper highlights exactly lbm, milc, bzip2 and gobmk.");
}
