//! Textual printing of modules, functions and instructions.
//!
//! The format round-trips through [`parser`](crate::parser) and is used by
//! tests, examples and the debugging output of the analyses. Result types
//! are printed explicitly so the parser needs no inference:
//!
//! ```text
//! global @buf: int[64]
//!
//! func @f(%v0: int*, %v1: int) -> int {
//! bb0:
//!   %v2: int = const 0
//!   %v3: int = cmp lt %v1, %v2
//!   br %v3, bb1, bb2
//! ...
//! }
//! ```

use crate::function::Function;
use crate::ids::{BlockId, Value};
use crate::inst::{CopyOrigin, InstKind};
use crate::module::Module;
use std::fmt::{self, Write};

/// Prints a whole module.
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    for (_, g) in m.globals() {
        let _ = writeln!(s, "global @{}: {}[{}]", g.name, g.elem_ty, g.count);
    }
    if m.num_globals() > 0 {
        s.push('\n');
    }
    for (_, f) in m.functions() {
        s.push_str(&print_function(f, m));
        s.push('\n');
    }
    s
}

/// Prints a single function. `module` provides callee and global names.
pub fn print_function(f: &Function, module: &Module) -> String {
    let mut s = String::new();
    let _ = write!(s, "func @{}(", f.name);
    for (i, (_, ty)) in f.params.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{}: {}", f.param_value(i), ty);
    }
    s.push(')');
    if let Some(rt) = f.ret_ty {
        let _ = write!(s, " -> {rt}");
    }
    s.push_str(" {\n");
    for b in f.block_ids() {
        let _ = writeln!(s, "{b}:");
        for (v, data) in f.block_insts(b) {
            if matches!(data.kind, InstKind::Param(_)) {
                continue; // params appear in the signature
            }
            s.push_str("  ");
            let _ = writeln!(s, "{}", DisplayInst { f, module, v });
        }
    }
    s.push_str("}\n");
    s
}

/// Displays one instruction (without trailing newline).
pub struct DisplayInst<'a> {
    /// Enclosing function.
    pub f: &'a Function,
    /// Enclosing module (for callee/global names).
    pub module: &'a Module,
    /// The instruction to print.
    pub v: Value,
}

impl fmt::Display for DisplayInst<'_> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let data = self.f.inst(self.v);
        if let Some(ty) = data.ty {
            write!(out, "{}: {} = ", self.v, ty)?;
        }
        match &data.kind {
            InstKind::Const(c) => write!(out, "const {c}"),
            InstKind::Param(i) => write!(out, "param {i}"),
            InstKind::Binary { op, lhs, rhs } => write!(out, "{op} {lhs}, {rhs}"),
            InstKind::Cmp { pred, lhs, rhs } => write!(out, "cmp {pred} {lhs}, {rhs}"),
            InstKind::Phi { incomings } => {
                write!(out, "phi")?;
                for (i, (b, v)) in incomings.iter().enumerate() {
                    if i > 0 {
                        write!(out, ",")?;
                    }
                    write!(out, " [{b}: {v}]")?;
                }
                Ok(())
            }
            InstKind::Copy { src, origin } => {
                write!(out, "copy {src}")?;
                match origin {
                    CopyOrigin::Plain => Ok(()),
                    CopyOrigin::SigmaTrue { cmp } => write!(out, " sigma_t({cmp})"),
                    CopyOrigin::SigmaFalse { cmp } => write!(out, " sigma_f({cmp})"),
                    CopyOrigin::SubSplit { sub } => write!(out, " subsplit({sub})"),
                }
            }
            InstKind::Alloca { count } => write!(out, "alloca {count}"),
            InstKind::Malloc { count } => write!(out, "malloc {count}"),
            InstKind::GlobalAddr(g) => {
                write!(out, "globaladdr @{}", self.module.global(*g).name)
            }
            InstKind::Gep { base, offset } => write!(out, "gep {base}, {offset}"),
            InstKind::Load { ptr } => write!(out, "load {ptr}"),
            InstKind::Store { ptr, value } => write!(out, "store {ptr}, {value}"),
            InstKind::Call { callee, args } => {
                write!(out, "call @{}(", self.module.function(*callee).name)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(out, ", ")?;
                    }
                    write!(out, "{a}")?;
                }
                write!(out, ")")
            }
            InstKind::Opaque => write!(out, "opaque"),
            InstKind::Br { cond, then_bb, else_bb } => {
                write!(out, "br {cond}, {then_bb}, {else_bb}")
            }
            InstKind::Jump(b) => write!(out, "jump {b}"),
            InstKind::Ret(v) => match v {
                Some(v) => write!(out, "ret {v}"),
                None => write!(out, "ret"),
            },
        }
    }
}

/// Returns `bb` labels for error messages.
pub fn block_label(b: BlockId) -> String {
    b.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Pred};
    use crate::types::Type;

    #[test]
    fn prints_a_small_function() {
        let mut m = Module::new();
        let g = m.declare_global("buf", Type::Int, 8);
        let callee = m.declare_function("id", vec![("x", Type::Int)], Some(Type::Int));
        {
            let f = m.function_mut(callee);
            let mut b = FunctionBuilder::new(f);
            let x = b.param(0);
            b.ret(Some(x));
            b.finish();
        }
        let fid = m.declare_function("main", vec![], Some(Type::Int));
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let c = b.iconst(3);
            let p = b.global_addr(g, Type::Int);
            let q = b.gep(p, c);
            let l = b.load(q);
            let s = b.binary(BinOp::Add, l, c);
            let cc = b.cmp(Pred::Lt, l, s);
            let r = b.call(callee, vec![cc], Some(Type::Int));
            b.store(q, r);
            b.ret(Some(r));
            b.finish();
        }
        let text = print_module(&m);
        assert!(text.contains("global @buf: int[8]"));
        assert!(text.contains("func @main() -> int {"));
        assert!(text.contains("= globaladdr @buf"));
        assert!(text.contains("= call @id("));
        assert!(text.contains("cmp lt"));
        assert!(text.contains("store "));
        assert!(text.contains("ret "));
    }

    #[test]
    fn phi_and_copy_formatting() {
        let mut m = Module::new();
        let fid = m.declare_function("f", vec![("n", Type::Int)], None);
        let f = m.function_mut(fid);
        let mut b = FunctionBuilder::new(f);
        let entry = b.current_block();
        let bb = b.create_block();
        let n = b.param(0);
        b.jump(bb);
        b.switch_to(bb);
        let p = b.phi(Type::Int);
        b.set_phi_incomings(p, vec![(entry, n), (bb, p)]);
        let _c = b.copy(p);
        b.jump(bb);
        b.finish();
        let text = print_function(m.function(fid), &m);
        assert!(text.contains("phi [bb0:"), "got: {text}");
        assert!(text.contains("copy "));
    }
}
