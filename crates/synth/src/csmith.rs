//! A Csmith-like random program generator.
//!
//! The paper's applicability experiment (its §4.3, Figure 12) uses Csmith
//! (Yang et al., PLDI 2011) "tuned to produce programs with a single
//! function, in addition to the ever present main", varying two knobs:
//! the random seed (program size) and the maximum pointer nesting depth
//! (2–7, `int**` through `int*******`). Programs "do not read input
//! values: they use constants instead", which is why almost every memory
//! index is statically known.
//!
//! [`generate`] reproduces those characteristics: deterministic by seed,
//! single `work` function plus `main`, constant-heavy indexing, pointer
//! chains up to the requested depth, and — unlike real Csmith — a
//! guarantee that the program executes without trapping (all indices stay
//! in bounds, pointer cells are initialised before any read), so the
//! interpreter-based soundness property tests can run every generated
//! program.

use crate::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// Configuration for the generator.
#[derive(Clone, Copy, Debug)]
pub struct CsmithConfig {
    /// Random seed; same seed ⇒ same program.
    pub seed: u64,
    /// Maximum pointer nesting depth (≥ 1; the paper uses 2–7).
    pub max_ptr_depth: u8,
    /// Rough number of statements in `work`.
    pub num_stmts: usize,
    /// Helper functions to emit and call (`0` reproduces the paper's
    /// single-function lot byte for byte). With `h > 0`, the program
    /// gains `h` each of: an increment helper, a pointer-step helper and
    /// a recursive adder, plus random call sites in `work` — the corpus
    /// the interprocedural differential tests run on.
    pub helpers: usize,
}

impl Default for CsmithConfig {
    fn default() -> Self {
        Self { seed: 1, max_ptr_depth: 2, num_stmts: 40, helpers: 0 }
    }
}

/// All arrays have this many elements; all derived pointers keep at least
/// [`SLACK`] addressable elements ahead of them.
const ARRAY_SIZE: i64 = 32;
const SLACK: i64 = 4;

/// A pointer-typed local with a validity guarantee: at least `SLACK`
/// in-bounds elements, and (for depth ≥ 2) cells `0..SLACK` initialised.
#[derive(Clone, Debug)]
struct PtrVar {
    name: String,
    depth: u8,
    initialized: bool,
    /// In-bounds elements reachable from the pointer (≥ SLACK, invariant).
    slack: i64,
    /// Heap-backed (malloc) rather than derived from a named array. Only
    /// heap-backed pointers may be stored into pointer tables, so local
    /// arrays never escape — mirroring the paper's Csmith lot, where
    /// BasicAA's escape reasoning keeps locals disambiguated.
    heap: bool,
}

struct Gen {
    rng: StdRng,
    out: String,
    indent: usize,
    max_depth: u8,
    // environment
    globals: Vec<String>,
    scalars: Vec<String>,
    arrays: Vec<String>,
    ptrs: Vec<PtrVar>,
    next_id: usize,
    loop_depth: usize,
    /// Allocation sites created so far (the paper's Csmith lot averages
    /// six static sites per program; we cap at a similar scale).
    sites: usize,
    /// Helper-function count ([`CsmithConfig::helpers`]); `0` keeps the
    /// statement mix byte-identical to the single-function generator.
    helpers: usize,
}

impl Gen {
    fn fresh(&mut self, prefix: &str) -> String {
        self.next_id += 1;
        format!("{prefix}{}", self.next_id)
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    /// A small constant, most often in `0..SLACK` (csmith-style
    /// constant-heavy indexing).
    fn const_index(&mut self) -> i64 {
        self.rng.gen_range(0..SLACK)
    }

    /// A constant-*valued* index expression. Csmith code indexes with
    /// expressions the compiler must fold to constants; we model that with
    /// `ix{c}` variables (`ib * c`), which our pipeline does not constant-
    /// fold — BA sees an unknown offset, while the interval analysis knows
    /// the exact singleton range (the paper's Figure 12 effect).
    fn index_str(&mut self, c: i64) -> String {
        if self.rng.gen_bool(0.9) {
            format!("ix{c}")
        } else {
            format!("{c}")
        }
    }

    /// An integer expression over constants, scalars and safe memory reads.
    fn int_expr(&mut self, depth: usize) -> String {
        let choice = self.rng.gen_range(0..10);
        match choice {
            0..=3 => format!("{}", self.rng.gen_range(-50..50)),
            4..=5 if !self.scalars.is_empty() => {
                let i = self.rng.gen_range(0..self.scalars.len());
                self.scalars[i].clone()
            }
            6 if !self.arrays.is_empty() => {
                let i = self.rng.gen_range(0..self.arrays.len());
                let c = self.rng.gen_range(0..ARRAY_SIZE);
                let ix = self.index_str(c);
                format!("{}[{}]", self.arrays[i], ix)
            }
            7 if self.ptrs.iter().any(|p| p.depth == 1) => {
                let cands: Vec<usize> =
                    (0..self.ptrs.len()).filter(|&i| self.ptrs[i].depth == 1).collect();
                let i = cands[self.rng.gen_range(0..cands.len())];
                let c = self.const_index();
                let ix = self.index_str(c);
                format!("{}[{}]", self.ptrs[i].name, ix)
            }
            _ if depth < 2 => {
                let a = self.int_expr(depth + 1);
                let b = self.int_expr(depth + 1);
                let op = ["+", "-", "*"][self.rng.gen_range(0..3)];
                format!("({a} {op} {b})")
            }
            _ => format!("{}", self.rng.gen_range(0..10)),
        }
    }

    /// Any array name, preferring non-escaping locals 4:1 over globals
    /// (globals inevitably share a memory node with loaded pointers).
    fn some_array(&mut self) -> Option<String> {
        if !self.arrays.is_empty() && self.rng.gen_bool(0.8) {
            let i = self.rng.gen_range(0..self.arrays.len());
            return Some(self.arrays[i].clone());
        }
        if !self.globals.is_empty() {
            let i = self.rng.gen_range(0..self.globals.len());
            return Some(self.globals[i].clone());
        }
        if self.arrays.is_empty() {
            None
        } else {
            let i = self.rng.gen_range(0..self.arrays.len());
            Some(self.arrays[i].clone())
        }
    }

    fn ptr_of_depth(&mut self, depth: u8) -> Option<PtrVar> {
        let cands: Vec<usize> =
            (0..self.ptrs.len()).filter(|&i| self.ptrs[i].depth == depth).collect();
        if cands.is_empty() {
            return None;
        }
        Some(self.ptrs[cands[self.rng.gen_range(0..cands.len())]].clone())
    }

    fn heap_ptr_of_depth(&mut self, depth: u8) -> Option<PtrVar> {
        let cands: Vec<usize> = (0..self.ptrs.len())
            .filter(|&i| self.ptrs[i].depth == depth && self.ptrs[i].heap)
            .collect();
        if cands.is_empty() {
            return None;
        }
        Some(self.ptrs[cands[self.rng.gen_range(0..cands.len())]].clone())
    }

    fn stars(depth: u8) -> String {
        "*".repeat(depth as usize)
    }

    /// Variables declared inside a nested block go out of scope with it.
    fn env_snapshot(&self) -> (usize, usize, usize) {
        (self.scalars.len(), self.arrays.len(), self.ptrs.len())
    }

    fn env_restore(&mut self, (s, a, p): (usize, usize, usize)) {
        self.scalars.truncate(s);
        self.arrays.truncate(a);
        self.ptrs.truncate(p);
    }

    /// Declares a depth-`d` pointer and guarantees its validity invariant.
    fn decl_ptr(&mut self, d: u8) {
        let name = self.fresh("p");
        let stars = Self::stars(d);
        if d == 1 {
            // &array[c] or malloc or sibling + small offset.
            let choice = self.rng.gen_range(0..3);
            if choice == 0 {
                if let Some(a) = self.some_array() {
                    let c = self.const_index();
                    self.line(&format!("int* {name} = &{a}[{c}];"));
                    self.ptrs.push(PtrVar {
                        name,
                        depth: 1,
                        initialized: true,
                        slack: ARRAY_SIZE - c,
                        heap: false,
                    });
                    return;
                }
            }
            if choice == 1 {
                if let Some(p) = self.ptr_of_depth(1) {
                    let c = self.rng.gen_range(0..2);
                    if p.slack - c >= SLACK {
                        self.line(&format!("int* {name} = {} + {c};", p.name));
                        self.ptrs.push(PtrVar {
                            name,
                            depth: 1,
                            initialized: true,
                            slack: p.slack - c,
                            heap: p.heap,
                        });
                        return;
                    }
                }
            }
            if self.sites < 6 {
                self.sites += 1;
                self.line(&format!("int* {name} = malloc({ARRAY_SIZE});"));
                self.ptrs.push(PtrVar {
                    name,
                    depth: 1,
                    initialized: true,
                    slack: ARRAY_SIZE,
                    heap: true,
                });
            } else if let Some(a) = self.some_array() {
                let c = self.const_index();
                self.line(&format!("int* {name} = &{a}[{c}];"));
                self.ptrs.push(PtrVar {
                    name,
                    depth: 1,
                    initialized: true,
                    slack: ARRAY_SIZE - c,
                    heap: false,
                });
            }
        } else {
            // Deeper pointers come from malloc, then their first SLACK
            // cells are filled with valid depth-(d-1) pointers.
            // Build the chain bottom-up so every cell can reuse the level
            // below — deep chains should not multiply allocation sites
            // (the paper's Csmith lot averages six sites per program).
            // Cells only ever hold *heap-backed* pointers: storing an
            // array-derived pointer would escape the array and cost
            // BasicAA its locality reasoning.
            if self.heap_ptr_of_depth(d - 1).is_none() {
                if self.sites >= 6 {
                    return; // would need a new site; skip this chain
                }
                if d - 1 == 1 {
                    self.sites += 1;
                    let below = self.fresh("p");
                    self.line(&format!("int* {below} = malloc({ARRAY_SIZE});"));
                    self.ptrs.push(PtrVar {
                        name: below,
                        depth: 1,
                        initialized: true,
                        slack: ARRAY_SIZE,
                        heap: true,
                    });
                } else {
                    self.decl_ptr(d - 1);
                }
            }
            let Some(below) = self.heap_ptr_of_depth(d - 1) else { return };
            if self.sites >= 7 {
                return;
            }
            self.sites += 1;
            self.line(&format!("int{stars} {name} = malloc({ARRAY_SIZE});"));
            for c in 0..SLACK {
                let p = self.heap_ptr_of_depth(d - 1).unwrap_or_else(|| below.clone());
                self.line(&format!("{name}[{c}] = {};", p.name));
            }
            self.ptrs.push(PtrVar {
                name,
                depth: d,
                initialized: true,
                slack: ARRAY_SIZE,
                heap: true,
            });
        }
    }

    /// One random statement.
    fn stmt(&mut self, budget: &mut usize) {
        if *budget == 0 {
            return;
        }
        *budget -= 1;
        // Choices 21..24 are helper-call statements; they only exist when
        // helpers were requested, so `helpers == 0` draws from the same
        // range as the single-function generator (byte-identical output).
        let hi = if self.helpers > 0 { 24 } else { 21 };
        let choice = self.rng.gen_range(0..hi);
        match choice {
            0 => {
                let name = self.fresh("s");
                let e = self.int_expr(0);
                self.line(&format!("int {name} = {e};"));
                self.scalars.push(name);
            }
            1 => {
                // Conditional expression (csmith uses them liberally).
                let name = self.fresh("s");
                let c = self.int_expr(1);
                let a = self.int_expr(1);
                let b2 = self.int_expr(1);
                self.line(&format!("int {name} = {c} < {a} ? {a} : {b2};"));
                self.scalars.push(name);
            }
            2 if self.sites < 6 => {
                let name = self.fresh("a");
                self.line(&format!("int {name}[{ARRAY_SIZE}];"));
                self.arrays.push(name);
                self.sites += 1;
            }
            3 | 4 => {
                let d = self.rng.gen_range(1..=self.max_depth.max(1));
                self.decl_ptr(d);
            }
            16..=18 => {
                // Read an array cell at a constant-valued index.
                if let Some(a) = self.some_array() {
                    let name = self.fresh("s");
                    let c = self.rng.gen_range(0..ARRAY_SIZE);
                    let ix = self.index_str(c);
                    self.line(&format!("int {name} = {a}[{ix}];"));
                    self.scalars.push(name);
                }
            }
            5 | 6 | 12 | 13 | 14 | 15 | 19 | 20 => {
                // Store to an array cell (constant-valued index).
                if let Some(a) = self.some_array() {
                    let c = self.rng.gen_range(0..ARRAY_SIZE);
                    let e = self.int_expr(0);
                    let ix = self.index_str(c);
                    self.line(&format!("{a}[{ix}] = {e};"));
                }
            }
            7 => {
                // Store through a pointer.
                if let Some(p) = self.ptr_of_depth(1) {
                    let c = self.const_index();
                    let e = self.int_expr(0);
                    let ix = self.index_str(c);
                    self.line(&format!("{}[{ix}] = {e};", p.name));
                }
            }
            8 => {
                // Pull a pointer out of a deeper chain.
                let d = self.rng.gen_range(2..=self.max_depth.max(2));
                if let Some(p) = self.ptr_of_depth(d) {
                    if p.initialized {
                        let name = self.fresh("p");
                        let c = self.const_index();
                        let stars = Self::stars(d - 1);
                        self.line(&format!("int{stars} {name} = {}[{c}];", p.name));
                        // Accesses through loaded pointers may-alias every
                        // escaped object, so one such access merges whole
                        // memory-node clusters; keep them rare (they also
                        // are in real Csmith output).
                        if self.rng.gen_bool(0.25) {
                            self.ptrs.push(PtrVar {
                                name,
                                depth: d - 1,
                                initialized: true,
                                slack: SLACK,
                                heap: true,
                            });
                        }
                    }
                }
            }
            9 if self.loop_depth < 2 => {
                // A bounded stencil loop over the scratch array.
                let i = self.fresh("i");
                let bound = ARRAY_SIZE - 2;
                self.line(&format!("for (int {i} = 0; {i} < {bound}; {i}++) {{"));
                self.indent += 1;
                self.loop_depth += 1;
                let snapshot = self.env_snapshot();
                let e = self.int_expr(1);
                self.line(&format!("scratch[{i}] = scratch[{i} + 1] + {e};"));
                let mut inner = (*budget).min(2);
                while inner > 0 && *budget > 0 {
                    self.stmt(budget);
                    inner -= 1;
                }
                self.env_restore(snapshot);
                self.loop_depth -= 1;
                self.indent -= 1;
                self.line("}");
            }
            10 if self.scalars.len() >= 2 => {
                let i = self.rng.gen_range(0..self.scalars.len());
                let j = self.rng.gen_range(0..self.scalars.len());
                let (a, b) = (self.scalars[i].clone(), self.scalars[j].clone());
                self.line(&format!("if ({a} < {b}) {{"));
                self.indent += 1;
                let snapshot = self.env_snapshot();
                let mut inner = (*budget).min(2);
                while inner > 0 && *budget > 0 {
                    self.stmt(budget);
                    inner -= 1;
                }
                self.env_restore(snapshot);
                self.indent -= 1;
                self.line("}");
            }
            21 => {
                // Call an increment helper on an integer expression.
                let h = self.rng.gen_range(0..self.helpers);
                let name = self.fresh("s");
                let e = self.int_expr(1);
                self.line(&format!("int {name} = csh_next{h}({e});"));
                self.scalars.push(name);
            }
            22 => {
                // Step a depth-1 pointer through the helper; the result
                // has one element less slack, so only pointers with room
                // beyond the invariant qualify.
                let h = self.rng.gen_range(0..self.helpers);
                let cands: Vec<usize> = (0..self.ptrs.len())
                    .filter(|&i| self.ptrs[i].depth == 1 && self.ptrs[i].slack > SLACK)
                    .collect();
                if !cands.is_empty() {
                    let p = self.ptrs[cands[self.rng.gen_range(0..cands.len())]].clone();
                    let name = self.fresh("p");
                    self.line(&format!("int* {name} = csh_step{h}({});", p.name));
                    self.ptrs.push(PtrVar {
                        name,
                        depth: 1,
                        initialized: true,
                        slack: p.slack - 1,
                        heap: p.heap,
                    });
                }
            }
            23 => {
                // Call a recursive adder with a small constant bound (the
                // recursion terminates after at most 4 steps).
                let h = self.rng.gen_range(0..self.helpers);
                let name = self.fresh("s");
                let e = self.int_expr(1);
                let n = self.rng.gen_range(1..=4);
                self.line(&format!("int {name} = csh_add{h}({e}, {n});"));
                self.scalars.push(name);
            }
            _ => {
                // Read through a pointer into a fresh scalar.
                if let Some(p) = self.ptr_of_depth(1) {
                    let name = self.fresh("s");
                    let c = self.const_index();
                    let ix = self.index_str(c);
                    self.line(&format!("int {name} = {}[{ix}];", p.name));
                    self.scalars.push(name);
                }
            }
        }
    }
}

/// Generates one deterministic Csmith-like program.
pub fn generate(cfg: CsmithConfig) -> Workload {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E3779B97F4A7C15)),
        out: String::new(),
        indent: 0,
        max_depth: cfg.max_ptr_depth.max(1),
        globals: Vec::new(),
        scalars: Vec::new(),
        arrays: Vec::new(),
        ptrs: Vec::new(),
        next_id: 0,
        loop_depth: 0,
        sites: 0,
        helpers: cfg.helpers,
    };

    // Around six static allocation sites on average, like the paper's lot.
    let n_globals = 2usize;
    g.sites = n_globals + 1; // globals + scratch
    for _ in 0..n_globals {
        let name = g.fresh("g");
        let _ = writeln!(g.out, "int {name}[{ARRAY_SIZE}];");
        g.globals.push(name);
    }
    g.out.push('\n');

    for h in 0..cfg.helpers {
        let _ = writeln!(g.out, "int csh_next{h}(int i) {{ return i + {}; }}", h + 1);
        let _ = writeln!(g.out, "int* csh_step{h}(int* p) {{ return p + 1; }}");
        let _ = writeln!(
            g.out,
            "int csh_add{h}(int i, int n) {{ \
             if (n <= 0) {{ return i + 1; }} return csh_add{h}(i + 1, n - 1); }}"
        );
        g.out.push('\n');
    }

    g.line("void work() {");
    g.indent = 1;
    // The constant-valued index pool (see `index_str`).
    g.line("    int ib = 1;");
    for c in 0..ARRAY_SIZE {
        g.line(&format!("    int ix{c} = ib * {c};"));
    }
    // Loops run over a dedicated scratch array: variable-index accesses
    // would otherwise transitively merge every constant-index class of a
    // shared array into one memory node (both for us and for LLVM's
    // AliasSetTracker in the paper's setup).
    g.line(&format!("    int scratch[{ARRAY_SIZE}];"));
    let mut budget = cfg.num_stmts;
    while budget > 0 {
        g.stmt(&mut budget);
    }
    g.indent = 0;
    g.line("}");
    g.out.push('\n');

    g.line("int main() {");
    g.indent = 1;
    g.line("work();");
    let g0 = g.globals[0].clone();
    g.line(&format!("return ({g0}[0] + {g0}[7]) % 256;"));
    g.indent = 0;
    g.line("}");

    let name = if cfg.helpers > 0 {
        format!("csmith_d{}_s{}_h{}", cfg.max_ptr_depth, cfg.seed, cfg.helpers)
    } else {
        format!("csmith_d{}_s{}", cfg.max_ptr_depth, cfg.seed)
    };
    Workload { name, source: std::mem::take(&mut g.out) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let a = generate(CsmithConfig { seed: 7, ..Default::default() });
        let b = generate(CsmithConfig { seed: 7, ..Default::default() });
        let c = generate(CsmithConfig { seed: 8, ..Default::default() });
        assert_eq!(a.source, b.source);
        assert_ne!(a.source, c.source);
    }

    #[test]
    fn all_depths_compile_and_run() {
        for depth in 2..=7u8 {
            for seed in 0..5u64 {
                let w = generate(CsmithConfig {
                    seed,
                    max_ptr_depth: depth,
                    num_stmts: 30,
                    helpers: 0,
                });
                let m = sraa_minic::compile(&w.source)
                    .unwrap_or_else(|e| panic!("{}: {e}\n{}", w.name, w.source));
                let mut interp = sraa_ir::Interpreter::new(&m).with_step_limit(2_000_000);
                interp
                    .run("main", &[])
                    .unwrap_or_else(|e| panic!("{} must not trap: {e:?}\n{}", w.name, w.source));
            }
        }
    }

    #[test]
    fn deep_programs_mention_deep_pointers() {
        let mut seen = false;
        for seed in 0..20 {
            let w = generate(CsmithConfig { seed, max_ptr_depth: 4, num_stmts: 60, helpers: 0 });
            seen |= w.source.contains("int****");
        }
        assert!(seen, "depth-4 chains should appear in at least one of 20 programs");
    }

    #[test]
    fn helper_mode_emits_calls_and_stays_trap_free() {
        let mut saw_call = false;
        for seed in 0..10u64 {
            let w = generate(CsmithConfig { seed, max_ptr_depth: 2, num_stmts: 40, helpers: 2 });
            assert!(w.name.ends_with("_h2"));
            saw_call |= w.source.contains("csh_next") || w.source.contains("csh_step");
            let m = sraa_minic::compile(&w.source)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", w.name, w.source));
            let mut interp = sraa_ir::Interpreter::new(&m).with_step_limit(2_000_000);
            interp
                .run("main", &[])
                .unwrap_or_else(|e| panic!("{} must not trap: {e:?}\n{}", w.name, w.source));
        }
        assert!(saw_call, "helper mode should emit call sites");
    }

    #[test]
    fn helpers_zero_reproduces_the_single_function_lot() {
        let plain = generate(CsmithConfig { seed: 11, ..Default::default() });
        let zero = generate(CsmithConfig { seed: 11, helpers: 0, ..Default::default() });
        assert_eq!(plain.source, zero.source);
        assert!(!plain.source.contains("csh_"));
    }

    #[test]
    fn size_scales_with_num_stmts() {
        let small = generate(CsmithConfig { seed: 3, max_ptr_depth: 2, num_stmts: 10, helpers: 0 });
        let large =
            generate(CsmithConfig { seed: 3, max_ptr_depth: 2, num_stmts: 200, helpers: 0 });
        assert!(large.source.len() > small.source.len() * 2);
    }
}
