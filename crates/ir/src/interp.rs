//! A concrete interpreter for the IR.
//!
//! The interpreter exists to *validate the static analyses dynamically*:
//! the paper proves (its Theorem 3.9 / Corollary 3.10) that whenever
//! `x' ∈ LT(x)` and both variables are simultaneously alive, the run-time
//! value of `x'` is strictly smaller than that of `x`. Our property-based
//! tests execute randomly generated programs under this interpreter and
//! check exactly that, as well as the no-alias verdicts of the alias
//! analyses against concrete addresses.
//!
//! The memory model is a flat 64-bit address space with bump allocation:
//! every `alloca`/`malloc`/global gets a fresh, never-reused range, and all
//! scalars occupy [`Type::SIZE`] bytes. Addresses start above 0 so null is
//! never a valid location.

use crate::function::Function;
use crate::ids::{BlockId, FuncId, GlobalId, Value};
use crate::inst::{BinOp, InstKind};
use crate::module::Module;
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// Execution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The step budget was exhausted (possible non-termination).
    StepLimit,
    /// Division or remainder by zero.
    DivByZero,
    /// A load or store touched an address outside every live allocation.
    OutOfBounds {
        /// Offending address.
        addr: i64,
    },
    /// Call stack exceeded the recursion limit.
    StackOverflow,
    /// The requested entry function does not exist.
    NoSuchFunction(String),
    /// Wrong number of entry arguments.
    ArityMismatch,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::StepLimit => write!(f, "step limit exhausted"),
            ExecError::DivByZero => write!(f, "division by zero"),
            ExecError::OutOfBounds { addr } => write!(f, "memory access out of bounds at {addr}"),
            ExecError::StackOverflow => write!(f, "call stack overflow"),
            ExecError::NoSuchFunction(n) => write!(f, "no such function `{n}`"),
            ExecError::ArityMismatch => write!(f, "entry argument count mismatch"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A function activation record, exposed to [`Observer`]s.
#[derive(Clone, Debug)]
pub struct Frame {
    /// The executing function.
    pub func: FuncId,
    regs: Vec<Option<i64>>,
}

impl Frame {
    /// The concrete value of `v` in this frame, if defined yet.
    pub fn get(&self, v: Value) -> Option<i64> {
        self.regs.get(v.index()).copied().flatten()
    }
}

/// Hooks invoked during execution. All methods default to no-ops.
pub trait Observer {
    /// Called after a value-producing instruction assigns `value` to `v`.
    fn on_def(&mut self, frame: &Frame, v: Value, value: i64) {
        let _ = (frame, v, value);
    }

    /// Called on every memory access (after the address is computed,
    /// before the trap check). `inst` is the load or store instruction.
    fn on_access(&mut self, frame: &Frame, inst: Value, addr: i64, is_store: bool) {
        let _ = (frame, inst, addr, is_store);
    }
}

/// An [`Observer`] that observes nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Result of a successful execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Instructions executed.
    pub steps: u64,
    /// Value returned by the entry function, if any.
    pub result: Option<i64>,
}

/// Interprets a [`Module`]. See the module docs for the memory model.
#[derive(Debug)]
pub struct Interpreter<'m> {
    module: &'m Module,
    step_limit: u64,
    recursion_limit: usize,
    memory: HashMap<i64, i64>,
    /// Live allocations as (start, size_in_bytes), bump-allocated.
    allocations: Vec<(i64, i64)>,
    bump: i64,
    global_base: Vec<i64>,
    external_base: Option<i64>,
    steps: u64,
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter with globals pre-allocated.
    pub fn new(module: &'m Module) -> Self {
        let mut interp = Self {
            module,
            step_limit: 1_000_000,
            recursion_limit: 128,
            memory: HashMap::new(),
            allocations: Vec::new(),
            bump: 64, // null page
            global_base: Vec::new(),
            external_base: None,
            steps: 0,
        };
        for (_, g) in module.globals() {
            let base = interp.allocate(g.count as i64);
            interp.global_base.push(base);
        }
        interp
    }

    /// Sets the instruction budget (default one million).
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// The base address of global `g`.
    pub fn global_address(&self, g: GlobalId) -> i64 {
        self.global_base[g.index()]
    }

    /// Lazily allocates the buffer behind pointer-typed [`InstKind::Opaque`]
    /// values (64 scalar cells; all opaque pointers land in its first 8).
    fn external_buffer(&mut self) -> i64 {
        match self.external_base {
            Some(b) => b,
            None => {
                let b = self.allocate(64);
                self.external_base = Some(b);
                b
            }
        }
    }

    fn allocate(&mut self, count: i64) -> i64 {
        let count = count.max(0);
        let base = self.bump;
        let size = count * Type::SIZE;
        self.allocations.push((base, size));
        // Pad between allocations so "one past the end" of one object is
        // never the base of the next (mirrors real allocator slack and
        // avoids false must-alias at object boundaries).
        self.bump += size + Type::SIZE;
        base
    }

    fn check_access(&self, addr: i64) -> Result<(), ExecError> {
        // Allocations are bump-allocated in increasing order: binary search.
        let idx = self.allocations.partition_point(|&(start, _)| start <= addr);
        if idx > 0 {
            let (start, size) = self.allocations[idx - 1];
            if addr >= start
                && addr + Type::SIZE <= start + size
                && (addr - start) % Type::SIZE == 0
            {
                return Ok(());
            }
        }
        Err(ExecError::OutOfBounds { addr })
    }

    /// Runs function `name` with integer `args`, without observation.
    ///
    /// # Errors
    ///
    /// Propagates any [`ExecError`] raised during execution.
    pub fn run(&mut self, name: &str, args: &[i64]) -> Result<Trace, ExecError> {
        self.run_observed(name, args, &mut NullObserver)
    }

    /// Runs function `name` with integer `args`, reporting events to `obs`.
    ///
    /// # Errors
    ///
    /// Propagates any [`ExecError`] raised during execution.
    pub fn run_observed(
        &mut self,
        name: &str,
        args: &[i64],
        obs: &mut dyn Observer,
    ) -> Result<Trace, ExecError> {
        let fid = self
            .module
            .function_by_name(name)
            .ok_or_else(|| ExecError::NoSuchFunction(name.to_string()))?;
        self.steps = 0;
        let result = self.call(fid, args, 0, obs)?;
        Ok(Trace { steps: self.steps, result })
    }

    fn call(
        &mut self,
        fid: FuncId,
        args: &[i64],
        depth: usize,
        obs: &mut dyn Observer,
    ) -> Result<Option<i64>, ExecError> {
        if depth > self.recursion_limit {
            return Err(ExecError::StackOverflow);
        }
        let f = self.module.function(fid);
        if args.len() != f.params.len() {
            return Err(ExecError::ArityMismatch);
        }
        let mut frame = Frame { func: fid, regs: vec![None; f.num_insts()] };

        let mut block = f.entry();
        let mut prev: Option<BlockId> = None;
        loop {
            match self.exec_block(f, fid, block, prev, &mut frame, args, depth, obs)? {
                Flow::Jump(next) => {
                    prev = Some(block);
                    block = next;
                }
                Flow::Return(v) => return Ok(v),
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_block(
        &mut self,
        f: &Function,
        fid: FuncId,
        block: BlockId,
        prev: Option<BlockId>,
        frame: &mut Frame,
        args: &[i64],
        depth: usize,
        obs: &mut dyn Observer,
    ) -> Result<Flow, ExecError> {
        // φ-functions read their incomings w.r.t. the edge taken, all
        // "in parallel" (before any is written back).
        let insts: Vec<Value> = f.block(block).insts.clone();
        let mut phi_writes: Vec<(Value, i64)> = Vec::new();
        for &v in &insts {
            if let InstKind::Phi { incomings } = &f.inst(v).kind {
                let pred = prev.expect("phi in entry block");
                let (_, arg) = incomings
                    .iter()
                    .find(|(b, _)| *b == pred)
                    .expect("phi must cover the incoming edge (verifier)");
                let val = frame.get(*arg).expect("phi operand must be defined");
                phi_writes.push((v, val));
            }
        }
        for (v, val) in phi_writes {
            frame.regs[v.index()] = Some(val);
            obs.on_def(frame, v, val);
            self.tick()?;
        }

        for &v in &insts {
            let data = f.inst(v);
            let get = |frame: &Frame, x: Value| frame.get(x).expect("operand must be defined");
            match &data.kind {
                InstKind::Phi { .. } => continue, // handled above
                InstKind::Const(c) => {
                    self.define(frame, v, *c, obs)?;
                }
                InstKind::Param(i) => {
                    let val = args[*i as usize];
                    self.define(frame, v, val, obs)?;
                }
                InstKind::Binary { op, lhs, rhs } => {
                    let a = get(frame, *lhs);
                    let b = get(frame, *rhs);
                    // Pointer ± int scales the int by the element size;
                    // ptr − ptr yields an element count.
                    let val = match op {
                        BinOp::Add => {
                            if f.value_type(*lhs).is_some_and(Type::is_ptr) {
                                a.wrapping_add(b.wrapping_mul(Type::SIZE))
                            } else {
                                a.wrapping_add(b)
                            }
                        }
                        BinOp::Sub => {
                            match (
                                f.value_type(*lhs).is_some_and(Type::is_ptr),
                                f.value_type(*rhs).is_some_and(Type::is_ptr),
                            ) {
                                (true, true) => a.wrapping_sub(b) / Type::SIZE,
                                (true, false) => a.wrapping_sub(b.wrapping_mul(Type::SIZE)),
                                _ => a.wrapping_sub(b),
                            }
                        }
                        BinOp::Mul => a.wrapping_mul(b),
                        BinOp::Div => {
                            if b == 0 {
                                return Err(ExecError::DivByZero);
                            }
                            a.wrapping_div(b)
                        }
                        BinOp::Rem => {
                            if b == 0 {
                                return Err(ExecError::DivByZero);
                            }
                            a.wrapping_rem(b)
                        }
                    };
                    self.define(frame, v, val, obs)?;
                }
                InstKind::Cmp { pred, lhs, rhs } => {
                    let val = pred.eval(get(frame, *lhs), get(frame, *rhs)) as i64;
                    self.define(frame, v, val, obs)?;
                }
                InstKind::Copy { src, .. } => {
                    let val = get(frame, *src);
                    self.define(frame, v, val, obs)?;
                }
                InstKind::Alloca { count } | InstKind::Malloc { count } => {
                    let n = get(frame, *count);
                    let base = self.allocate(n);
                    self.define(frame, v, base, obs)?;
                }
                InstKind::GlobalAddr(g) => {
                    let base = self.global_base[g.index()];
                    self.define(frame, v, base, obs)?;
                }
                InstKind::Gep { base, offset } => {
                    let val = get(frame, *base)
                        .wrapping_add(get(frame, *offset).wrapping_mul(Type::SIZE));
                    self.define(frame, v, val, obs)?;
                }
                InstKind::Load { ptr } => {
                    let addr = get(frame, *ptr);
                    obs.on_access(frame, v, addr, false);
                    self.check_access(addr)?;
                    let val = self.memory.get(&addr).copied().unwrap_or(0);
                    self.define(frame, v, val, obs)?;
                }
                InstKind::Store { ptr, value } => {
                    let addr = get(frame, *ptr);
                    obs.on_access(frame, v, addr, true);
                    self.check_access(addr)?;
                    let val = get(frame, *value);
                    self.memory.insert(addr, val);
                    self.tick()?;
                }
                InstKind::Call { callee, args: actuals } => {
                    let vals: Vec<i64> = actuals.iter().map(|&a| get(frame, a)).collect();
                    self.tick()?;
                    let r = self.call(*callee, &vals, depth + 1, obs)?;
                    if data.has_result() {
                        let val = r.expect("verifier ensures result presence");
                        frame.regs[v.index()] = Some(val);
                        obs.on_def(frame, v, val);
                    }
                }
                InstKind::Opaque => {
                    let val = if data.ty.is_some_and(Type::is_ptr) {
                        // Pointer-typed external input: a valid pointer
                        // into a dedicated "external" buffer, so programs
                        // may dereference it (modelling I/O buffers).
                        let base = self.external_buffer();
                        let off = (self.steps as i64 % 8) * Type::SIZE;
                        base + off
                    } else {
                        // Deterministic pseudo-input from the step count.
                        (self.steps as i64).wrapping_mul(2654435761) % 1024
                    };
                    self.define(frame, v, val, obs)?;
                }
                InstKind::Br { cond, then_bb, else_bb } => {
                    self.tick()?;
                    let c = get(frame, *cond);
                    return Ok(Flow::Jump(if c != 0 { *then_bb } else { *else_bb }));
                }
                InstKind::Jump(t) => {
                    self.tick()?;
                    return Ok(Flow::Jump(*t));
                }
                InstKind::Ret(rv) => {
                    self.tick()?;
                    return Ok(Flow::Return(rv.map(|x| get(frame, x))));
                }
            }
        }
        unreachable!("verifier guarantees every block ends in a terminator (@{} {})", fid, block)
    }

    fn define(
        &mut self,
        frame: &mut Frame,
        v: Value,
        val: i64,
        obs: &mut dyn Observer,
    ) -> Result<(), ExecError> {
        frame.regs[v.index()] = Some(val);
        obs.on_def(frame, v, val);
        self.tick()
    }

    fn tick(&mut self) -> Result<(), ExecError> {
        self.steps += 1;
        if self.steps > self.step_limit {
            Err(ExecError::StepLimit)
        } else {
            Ok(())
        }
    }
}

enum Flow {
    Jump(BlockId),
    Return(Option<i64>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Pred;

    fn sum_module() -> Module {
        // main(n): s = 0; for (i = 0; i < n; i++) s += i; return s;
        let mut m = Module::new();
        let fid = m.declare_function("main", vec![("n", Type::Int)], Some(Type::Int));
        let f = m.function_mut(fid);
        let mut b = FunctionBuilder::new(f);
        let entry = b.current_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let n = b.param(0);
        let zero = b.iconst(0);
        let one = b.iconst(1);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(Type::Int);
        let s = b.phi(Type::Int);
        let c = b.cmp(Pred::Lt, i, n);
        b.br(c, body, exit);
        b.switch_to(body);
        let s2 = b.binary(BinOp::Add, s, i);
        let i2 = b.binary(BinOp::Add, i, one);
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(s));
        b.set_phi_incomings(i, vec![(entry, zero), (body, i2)]);
        b.set_phi_incomings(s, vec![(entry, zero), (body, s2)]);
        b.finish();
        m
    }

    #[test]
    fn computes_triangular_numbers() {
        let m = sum_module();
        crate::verifier::verify(&m).unwrap();
        for n in [0i64, 1, 5, 10] {
            let mut interp = Interpreter::new(&m);
            let t = interp.run("main", &[n]).unwrap();
            assert_eq!(t.result, Some(n * (n - 1) / 2), "sum below {n}");
        }
    }

    #[test]
    fn memory_reads_back_stores() {
        // main(): p = alloca 4; p[2] = 7; return p[2] + p[0] (p[0] is 0).
        let mut m = Module::new();
        let fid = m.declare_function("main", vec![], Some(Type::Int));
        let f = m.function_mut(fid);
        let mut b = FunctionBuilder::new(f);
        let four = b.iconst(4);
        let two = b.iconst(2);
        let seven = b.iconst(7);
        let zero = b.iconst(0);
        let p = b.alloca(Type::Int, four);
        let p2 = b.gep(p, two);
        b.store(p2, seven);
        let x = b.load(p2);
        let p0 = b.gep(p, zero);
        let y = b.load(p0);
        let r = b.binary(BinOp::Add, x, y);
        b.ret(Some(r));
        b.finish();
        let mut interp = Interpreter::new(&m);
        assert_eq!(interp.run("main", &[]).unwrap().result, Some(7));
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut m = Module::new();
        let fid = m.declare_function("main", vec![], Some(Type::Int));
        let f = m.function_mut(fid);
        let mut b = FunctionBuilder::new(f);
        let one = b.iconst(1);
        let ten = b.iconst(10);
        let p = b.alloca(Type::Int, one);
        let q = b.gep(p, ten);
        let x = b.load(q);
        b.ret(Some(x));
        b.finish();
        let mut interp = Interpreter::new(&m);
        assert!(matches!(interp.run("main", &[]), Err(ExecError::OutOfBounds { .. })));
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut m = Module::new();
        let fid = m.declare_function("main", vec![], None);
        let f = m.function_mut(fid);
        let mut b = FunctionBuilder::new(f);
        let l = b.create_block();
        b.jump(l);
        b.switch_to(l);
        b.jump(l);
        b.finish();
        let mut interp = Interpreter::new(&m).with_step_limit(100);
        assert_eq!(interp.run("main", &[]), Err(ExecError::StepLimit));
    }

    #[test]
    fn calls_pass_arguments_and_return() {
        let mut m = Module::new();
        let sq = m.declare_function("square", vec![("x", Type::Int)], Some(Type::Int));
        {
            let f = m.function_mut(sq);
            let mut b = FunctionBuilder::new(f);
            let x = b.param(0);
            let r = b.binary(BinOp::Mul, x, x);
            b.ret(Some(r));
            b.finish();
        }
        let fid = m.declare_function("main", vec![], Some(Type::Int));
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let five = b.iconst(5);
            let r = b.call(sq, vec![five], Some(Type::Int));
            b.ret(Some(r));
            b.finish();
        }
        let mut interp = Interpreter::new(&m);
        assert_eq!(interp.run("main", &[]).unwrap().result, Some(25));
    }

    #[test]
    fn div_by_zero_traps() {
        let mut m = Module::new();
        let fid = m.declare_function("main", vec![], Some(Type::Int));
        let f = m.function_mut(fid);
        let mut b = FunctionBuilder::new(f);
        let one = b.iconst(1);
        let zero = b.iconst(0);
        let r = b.binary(BinOp::Div, one, zero);
        b.ret(Some(r));
        b.finish();
        let mut interp = Interpreter::new(&m);
        assert_eq!(interp.run("main", &[]), Err(ExecError::DivByZero));
    }

    #[test]
    fn observer_sees_defs_in_order() {
        struct Collect(Vec<(Value, i64)>);
        impl Observer for Collect {
            fn on_def(&mut self, _f: &Frame, v: Value, val: i64) {
                self.0.push((v, val));
            }
        }
        let m = sum_module();
        let mut interp = Interpreter::new(&m);
        let mut obs = Collect(Vec::new());
        interp.run_observed("main", &[3], &mut obs).unwrap();
        assert!(!obs.0.is_empty());
        // Each observed def must be visible in increasing step order; the
        // first observed value is the parameter n = 3.
        let param_val = obs.0.iter().find(|(v, _)| v.index() == 0).unwrap().1;
        assert_eq!(param_val, 3);
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let mut m = Module::new();
        let fid = m.declare_function("main", vec![], Some(Type::Int));
        let f = m.function_mut(fid);
        let mut b = FunctionBuilder::new(f);
        let four = b.iconst(4);
        let p = b.alloca(Type::Int, four);
        let q = b.malloc(Type::Int, four);
        let d = b.binary(BinOp::Sub, q, p);
        b.ret(Some(d));
        b.finish();
        let mut interp = Interpreter::new(&m);
        let d = interp.run("main", &[]).unwrap().result.unwrap();
        assert!(d.unsigned_abs() >= 4, "allocations must be at least 4 elements apart");
    }
}
