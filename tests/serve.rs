//! End-to-end tests of the resident daemon (`sraa serve`): in-process
//! server + client round trips, the upload-invalidation differential
//! (mirroring `tests/incremental.rs`), deterministic malformed-frame
//! handling, and a protocol fuzz property.
//!
//! The robustness contract under fuzz: any byte sequence a client sends
//! yields a typed error reply or a clean close — never a panic and never
//! a hang beyond the read timeout. The daemon runs with
//! [`LatticeBackend::Auto`](sraa::lt::LatticeBackend::Auto), so the CI
//! matrix's `SRAA_LATTICE` pin exercises both backends here too.

use sraa::alias::{render_eval, AaEval, StrictInequalityAa};
use sraa::ir::{CallGraph, FuncId, Module};
use sraa::lt::EngineConfig;
use sraa::serve::{obj, Client, Json, Server, ServerConfig};
use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::time::Duration;

/// The known-gains program: `use_helper`'s parameter and the `advance`
/// call result are provably no-alias — but only interprocedurally.
const CALLS: &str = r#"
int* advance(int* p, int k) { if (k > 0) { return p + k; } return p + 1; }
int use_helper(int* p, int n) { int* q = advance(p, n); *q = 1; *p = 2; return *q; }
int main() { int a[8]; return use_helper(a, 3); }
"#;

/// Leaks a TCP server on an ephemeral port and serves it from a
/// background thread (ephemeral ports keep parallel test binaries from
/// colliding; the leak is one listener per test process).
fn spawn_server(cfg: ServerConfig) -> (&'static Server, SocketAddr, std::thread::JoinHandle<()>) {
    let server =
        Box::leak(Box::new(Server::bind_tcp("127.0.0.1:0", cfg).expect("bind ephemeral port")));
    let addr = server.tcp_addr().expect("tcp server has an address");
    let handle = std::thread::spawn(|| server.run().expect("serve loop"));
    (server, addr, handle)
}

fn upload_req(name: &str, source: &str) -> Json {
    obj([
        ("cmd", Json::Str("upload".into())),
        ("name", Json::Str(name.into())),
        ("source", Json::Str(source.into())),
    ])
}

fn pair_req(cmd: &str, module: &str, func: &str, p1: &str, p2: &str) -> Json {
    obj([
        ("cmd", Json::Str(cmd.into())),
        ("module", Json::Str(module.into())),
        ("func", Json::Str(func.into())),
        ("p1", Json::Str(p1.into())),
        ("p2", Json::Str(p2.into())),
    ])
}

/// The one-shot reference: a cold interprocedural engine on `src`, as
/// `sraa eval --interproc` would build it.
fn one_shot(src: &str) -> (Module, StrictInequalityAa) {
    let mut m = sraa::minic::compile(src).expect("source compiles");
    let lt =
        StrictInequalityAa::with_engine_config(&mut m, EngineConfig::default().with_summaries());
    (m, lt)
}

#[test]
fn resident_daemon_matches_one_shot_answers_byte_for_byte() {
    let (server, addr, handle) = spawn_server(ServerConfig::default());
    let mut client = Client::connect_tcp(addr).expect("connect");

    let up = client.request(&upload_req("demo", CALLS)).expect("upload round trip");
    assert!(up.is_ok(), "upload failed: {up:?}");
    assert_eq!(up.num_field("functions"), Some(3));
    assert_eq!((up.num_field("hits"), up.num_field("misses")), (Some(0), Some(3)), "cold upload");

    // The resident `eval` answer is byte-identical to the one-shot path.
    let (m, lt) = one_shot(CALLS);
    let expected = render_eval(&m, &lt);
    let ev = client
        .request(&obj([("cmd", Json::Str("eval".into())), ("module", Json::Str("demo".into()))]))
        .expect("eval");
    assert_eq!(ev.str_field("text"), Some(expected.as_str()), "eval text must match one-shot");

    // Every locally proven no-alias pair answers `no-alias` over the wire,
    // and the streamed `pairs` reply lists exactly the same pairs.
    for (fid, f) in m.functions() {
        let fname = f.name.clone();
        let ptrs = AaEval::pointer_values(&m, fid);
        let local = lt.engine().no_alias_pairs(f, fid, &ptrs);
        for (a, b) in &local {
            let r = client
                .request(&pair_req("no-alias", "demo", &fname, &format!("{a}"), &format!("{b}")))
                .expect("pair query");
            assert_eq!(r.get("no_alias"), Some(&Json::Bool(true)), "{fname}: {a} vs {b}");
        }
        let mut streamed = Vec::new();
        let done = client
            .request_streamed(
                &obj([
                    ("cmd", Json::Str("pairs".into())),
                    ("module", Json::Str("demo".into())),
                    ("func", Json::Str(fname.clone())),
                ]),
                |frame| {
                    if let Some(Json::Arr(pair)) = frame.get("pair") {
                        streamed.push(
                            pair.iter().filter_map(Json::as_str).collect::<Vec<_>>().join(" "),
                        );
                    }
                },
            )
            .expect("pairs stream");
        assert_eq!(done.num_field("done"), Some(local.len() as i64));
        let expected_pairs: Vec<String> = local.iter().map(|(a, b)| format!("{a} {b}")).collect();
        assert_eq!(streamed, expected_pairs, "{fname}: streamed pairs differ");
    }

    // `lt` answers agree with the engine too (one spot check per order).
    let fid = m.function_by_name("use_helper").unwrap();
    let ptrs = AaEval::pointer_values(&m, fid);
    let (a, b) = (ptrs[0], ptrs[1]);
    for (x, y) in [(a, b), (b, a)] {
        let r = client
            .request(&pair_req("lt", "demo", "use_helper", &format!("{x}"), &format!("{y}")))
            .expect("lt query");
        assert_eq!(r.get("lt"), Some(&Json::Bool(lt.engine().less_than(fid, x, y))));
    }

    // Stats see the traffic; shutdown drains and stops the accept loop.
    let stats = client.request(&obj([("cmd", Json::Str("stats".into()))])).expect("stats");
    assert!(stats.is_ok());
    assert_eq!(stats.num_field("modules"), Some(1));
    assert_eq!(stats.num_field("uploads"), Some(1));
    assert!(stats.num_field("queries").unwrap_or(0) > 0);
    let bye = client.request(&obj([("cmd", Json::Str("shutdown".into()))])).expect("shutdown");
    assert!(bye.is_ok());
    // Graceful drain: the serve loop notices the flag, waits out in-flight
    // connections and returns (the leaked listener's OS backlog may still
    // accept, so joining the loop is the real observation).
    handle.join().expect("serve loop exits cleanly after shutdown");
    assert_eq!(server.stats().uploads.load(std::sync::atomic::Ordering::Relaxed), 1);
}

// ---------------------------------------------------------------------
// Upload invalidation: the same controllable-mutation family as
// tests/incremental.rs — helper i calls helper i+1 iff structure bit i is
// set, body variants are selectable per helper.
// ---------------------------------------------------------------------

fn render(n: usize, structure: u64, variants: u64) -> String {
    let mut src = String::new();
    for i in (0..n).rev() {
        let variant = (variants >> i) & 1;
        let calls_next = i + 1 < n && (structure >> i) & 1 == 1;
        let body = match (calls_next, variant) {
            (false, 0) => "if (n > 0) { return p + n; } return p + 1;".to_string(),
            (false, _) => "if (n > 1) { return p + n; } return p;".to_string(),
            (true, v) => format!("int* q = h{}(p, n); return q + {};", i + 1, v + 1),
        };
        src.push_str(&format!("int* h{i}(int* p, int n) {{ {body} }}\n"));
    }
    src.push_str("int main() {\n  int a[64];\n  int acc = 0;\n");
    for i in 0..n {
        src.push_str(&format!("  int* r{i} = h{i}(a, {});\n  acc += *r{i};\n", i + 2));
    }
    src.push_str("  return acc;\n}\n");
    src
}

/// Functions that can reach any function in `from` (inclusive) — the set
/// a mutation of `from` must invalidate on re-upload.
fn reverse_reachable(m: &Module, from: &BTreeSet<FuncId>) -> BTreeSet<FuncId> {
    let cg = CallGraph::build(m);
    let mut seen: BTreeSet<FuncId> = from.clone();
    let mut work: Vec<FuncId> = from.iter().copied().collect();
    while let Some(f) = work.pop() {
        for &caller in cg.callers(f) {
            if seen.insert(caller) {
                work.push(caller);
            }
        }
    }
    seen
}

#[test]
fn mutated_reupload_invalidates_exactly_the_reverse_reachability_closure() {
    // h0 → h1 → h2 → h3 chained; main calls every helper.
    let (n, structure) = (4, 0b0111u64);
    let old_src = render(n, structure, 0);
    let new_src = render(n, structure, 1 << 2); // mutate h2's body

    let (_, addr, _handle) = spawn_server(ServerConfig::default());
    let mut client = Client::connect_tcp(addr).expect("connect");

    // Cold upload: everything is an honest miss.
    let up = client.request(&upload_req("m", &old_src)).expect("upload");
    assert!(up.is_ok());
    assert_eq!(up.num_field("misses"), Some(n as i64 + 1));
    assert_eq!((up.num_field("hits"), up.num_field("invalidated")), (Some(0), Some(0)));

    // Unchanged re-upload: a complete hit.
    let again = client.request(&upload_req("m", &old_src)).expect("re-upload");
    assert_eq!(again.num_field("hits"), Some(n as i64 + 1));
    assert_eq!((again.num_field("misses"), again.num_field("invalidated")), (Some(0), Some(0)));

    // Mutated re-upload: exactly the reverse-reachability closure of h2
    // is invalidated ({h2, h1, h0, main}); h3 stays warm.
    let (fresh, cold_lt) = one_shot(&new_src);
    let h2 = fresh.function_by_name("h2").expect("helper exists");
    let closure = reverse_reachable(&fresh, &BTreeSet::from([h2]));
    let total = fresh.num_functions();
    let mu = client.request(&upload_req("m", &new_src)).expect("mutated re-upload");
    assert!(mu.is_ok());
    assert_eq!(mu.num_field("invalidated"), Some(closure.len() as i64));
    assert_eq!(mu.num_field("hits"), Some((total - closure.len()) as i64));
    assert_eq!(mu.num_field("misses"), Some(0), "same function set: nothing can miss");

    // Differential: daemon answers after the mutated re-upload match a
    // cold one-shot run on the mutated module — eval text byte-for-byte,
    // and every per-function no-alias pair set.
    let ev = client
        .request(&obj([("cmd", Json::Str("eval".into())), ("module", Json::Str("m".into()))]))
        .expect("eval");
    assert_eq!(ev.str_field("text"), Some(render_eval(&fresh, &cold_lt).as_str()));
    for (fid, f) in fresh.functions() {
        let ptrs = AaEval::pointer_values(&fresh, fid);
        let local: Vec<String> = cold_lt
            .engine()
            .no_alias_pairs(f, fid, &ptrs)
            .iter()
            .map(|(a, b)| format!("{a} {b}"))
            .collect();
        let mut streamed = Vec::new();
        client
            .request_streamed(
                &obj([
                    ("cmd", Json::Str("pairs".into())),
                    ("module", Json::Str("m".into())),
                    ("func", Json::Str(f.name.clone())),
                ]),
                |frame| {
                    if let Some(Json::Arr(pair)) = frame.get("pair") {
                        streamed.push(
                            pair.iter().filter_map(Json::as_str).collect::<Vec<_>>().join(" "),
                        );
                    }
                },
            )
            .expect("pairs");
        assert_eq!(streamed, local, "{}: warm daemon vs cold one-shot", f.name);
    }
}

#[test]
fn warm_start_cache_makes_the_first_upload_hit() {
    use sraa::lt::persist;
    // Write a cache file the way `sraa eval --summary-cache` would.
    let path = std::env::temp_dir().join(format!("sraa_serve_warm_{}.bin", std::process::id()));
    std::fs::remove_file(&path).ok();
    {
        let mut m = sraa::minic::compile(CALLS).unwrap();
        let _ = sraa::lt::DisambiguationEngine::build(
            &mut m,
            EngineConfig::default().with_summary_cache(&path),
        );
    }
    let cache = persist::load(&path, Default::default()).expect("cache written");
    let server = Box::leak(Box::new(
        Server::bind_tcp("127.0.0.1:0", ServerConfig::default())
            .expect("bind")
            .with_warm_cache(cache),
    ));
    let addr = server.tcp_addr().unwrap();
    std::thread::spawn(|| server.run().expect("serve loop"));
    let mut client = Client::connect_tcp(addr).expect("connect");
    let up = client.request(&upload_req("demo", CALLS)).expect("upload");
    assert_eq!(up.num_field("hits"), Some(3), "warm start: first upload hits fully");
    assert_eq!((up.num_field("misses"), up.num_field("invalidated")), (Some(0), Some(0)));
    client.request(&obj([("cmd", Json::Str("shutdown".into()))])).expect("shutdown");
    std::fs::remove_file(&path).ok();
}

/// Satellite regression: a connection thread that panics — even while
/// holding the daemon's modules write lock — must not take the daemon
/// down or wedge the lock. Before the fix, the accept loop's scoped
/// thread propagated the panic out of `Server::run` (killing the
/// daemon), and every later `.expect("... poisoned")` on the shared
/// locks cascaded. The debug-only `debug-poison` command panics in the
/// connection thread with the write lock held, exercising both fixes at
/// once: `catch_unwind` in the accept loop and `into_inner` recovery on
/// every lock site.
#[cfg(debug_assertions)]
#[test]
fn a_panicking_connection_does_not_take_the_daemon_down() {
    let (server, addr, handle) = spawn_server(ServerConfig::default());
    let mut victim = Client::connect_tcp(addr).expect("connect");
    let r = victim.request(&obj([("cmd", Json::Str("debug-poison".into()))]));
    assert!(r.is_err(), "the panicking connection dies without a reply, got: {r:?}");

    // The daemon keeps serving on a fresh connection: upload, query,
    // stats — all through the locks the dead thread poisoned.
    let mut client = Client::connect_tcp(addr).expect("reconnect after panic");
    let up = client.request(&upload_req("demo", CALLS)).expect("upload after panic");
    assert!(up.is_ok(), "upload failed after a connection panic: {up:?}");
    let ev = client
        .request(&obj([("cmd", Json::Str("eval".into())), ("module", Json::Str("demo".into()))]))
        .expect("eval after panic");
    assert!(ev.is_ok());
    let stats = client.request(&obj([("cmd", Json::Str("stats".into()))])).expect("stats");
    assert_eq!(stats.num_field("panics"), Some(1), "the caught panic is counted");
    assert_eq!(stats.num_field("modules"), Some(1));

    let bye = client.request(&obj([("cmd", Json::Str("shutdown".into()))])).expect("shutdown");
    assert!(bye.is_ok());
    handle.join().expect("serve loop survives a panicking connection");
    assert_eq!(server.stats().panics.load(std::sync::atomic::Ordering::Relaxed), 1);
}

// ---------------------------------------------------------------------
// Malformed input: deterministic cases, then the fuzz property.
// ---------------------------------------------------------------------

mod hostile {
    use super::*;
    use sraa::serve::encode_frame;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::sync::OnceLock;

    /// One shared hostile-input daemon: a tight request-size cap (so
    /// oversized frames are cheap to trigger) and a short read timeout
    /// (the fuzz hang bound).
    fn fuzz_addr() -> SocketAddr {
        static ADDR: OnceLock<SocketAddr> = OnceLock::new();
        *ADDR.get_or_init(|| {
            let server = Box::leak(Box::new(
                Server::bind_tcp(
                    "127.0.0.1:0",
                    ServerConfig {
                        read_timeout: Duration::from_millis(400),
                        max_frame: 1024,
                        ..Default::default()
                    },
                )
                .expect("bind fuzz server"),
            ));
            let addr = server.tcp_addr().unwrap();
            std::thread::spawn(|| server.run().expect("fuzz serve loop"));
            addr
        })
    }

    /// Sends raw bytes on a fresh connection and reads one reply line.
    /// `Some(json)` = the server replied with a well-formed frame;
    /// `None` = clean close. A hang (no reply, no close, beyond far more
    /// than the server's read timeout) panics.
    fn poke(bytes: &[u8]) -> Option<Json> {
        let stream = TcpStream::connect(fuzz_addr()).expect("server alive");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut writer = stream.try_clone().unwrap();
        // A server-side early close (EPIPE) is a clean close, not a fail.
        if writer.write_all(bytes).is_err() {
            return None;
        }
        let mut reader = BufReader::new(stream);
        let mut line = Vec::new();
        loop {
            match reader.read_until(b'\n', &mut line) {
                Ok(0) => return None, // clean close
                Ok(_) if line.last() == Some(&b'\n') => break,
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    panic!("server hung past its read timeout on {} bytes", bytes.len())
                }
                Err(_) => return None,
            }
        }
        let text = std::str::from_utf8(&line).expect("server frames are UTF-8");
        let payload = sraa::serve::decode_frame(text, usize::MAX >> 1)
            .expect("server frames are well-formed");
        Some(sraa::serve::parse(payload).expect("server payloads are JSON"))
    }

    fn error_code(reply: &Json) -> String {
        assert_eq!(reply.get("ok"), Some(&Json::Bool(false)), "expected typed error: {reply:?}");
        reply.str_field("error").expect("typed errors carry a code").to_string()
    }

    #[test]
    fn every_defect_gets_its_typed_code_and_the_connection_survives() {
        let stats_frame = encode_frame(&obj([("cmd", Json::Str("stats".into()))]).render());
        // One connection, every defect in sequence — the server answers
        // each with a typed error and keeps the connection open.
        let stream = TcpStream::connect(fuzz_addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut ask = |line: &str| -> Json {
            writer.write_all(line.as_bytes()).expect("write");
            let mut reply = String::new();
            loop {
                let mut l = String::new();
                match reader.read_line(&mut l) {
                    Ok(0) => panic!("server closed instead of replying"),
                    Ok(_) => {
                        reply.push_str(&l);
                        if reply.ends_with('\n') {
                            break;
                        }
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        panic!("server hung")
                    }
                    Err(e) => panic!("read error: {e}"),
                }
            }
            let payload = sraa::serve::decode_frame(&reply, usize::MAX >> 1).expect("frame");
            sraa::serve::parse(payload).expect("json")
        };

        assert_eq!(error_code(&ask("not a frame at all\n")), "bad-magic");
        assert_eq!(error_code(&ask("sraa1 zz\n")), "bad-header");
        assert_eq!(error_code(&ask("sraa1 3 0123456789abcdef xy\n")), "length-mismatch");
        assert_eq!(error_code(&ask("sraa1 2 0123456789abcdef xy\n")), "bad-checksum");
        assert_eq!(error_code(&ask("sraa1 99999 0123456789abcdef x\n")), "oversized");
        let bad_json = encode_frame("{oops");
        assert_eq!(error_code(&ask(&bad_json)), "bad-json");
        let unknown = encode_frame(&obj([("cmd", Json::Str("frobnicate".into()))]).render());
        assert_eq!(error_code(&ask(&unknown)), "unknown-cmd");
        let no_cmd = encode_frame("{}");
        assert_eq!(error_code(&ask(&no_cmd)), "bad-request");
        let ghost = encode_frame(
            &obj([("cmd", Json::Str("eval".into())), ("module", Json::Str("nope".into()))])
                .render(),
        );
        assert_eq!(error_code(&ask(&ghost)), "no-such-module");
        let bad_src = encode_frame(
            &obj([
                ("cmd", Json::Str("upload".into())),
                ("name", Json::Str("m".into())),
                ("source", Json::Str("int main( {".into())),
            ])
            .render(),
        );
        assert_eq!(error_code(&ask(&bad_src)), "compile-error");
        // After all that abuse, the same connection still answers.
        let alive = ask(&stats_frame);
        assert!(alive.is_ok(), "connection died after typed errors: {alive:?}");
        assert!(alive.num_field("errors").unwrap_or(0) >= 10);
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary bytes terminated by a newline: the server sends a
            /// typed reply or closes cleanly, and stays alive either way.
            #[test]
            fn random_frames_never_wedge_the_server(
                bytes in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..200),
            ) {
                let mut line = bytes.clone();
                line.push(b'\n');
                if let Some(reply) = poke(&line) {
                    prop_assert!(reply.get("ok").is_some(), "reply is not a protocol object");
                }
                // The server survived: a valid request still answers.
                let stats = poke(encode_frame(
                    &obj([("cmd", Json::Str("stats".into()))]).render(),
                ).as_bytes()).expect("server must be alive");
                prop_assert!(stats.is_ok());
            }

            /// Truncating a valid frame anywhere yields a typed error or a
            /// clean close — never a hang or a crash.
            #[test]
            fn truncated_frames_fail_typed(cut_ratio in 0usize..100) {
                let frame = encode_frame(
                    &obj([("cmd", Json::Str("stats".into()))]).render(),
                );
                let cut = cut_ratio * (frame.len() - 1) / 100;
                let mut line = frame.as_bytes()[..cut].to_vec();
                line.push(b'\n');
                if let Some(reply) = poke(&line) {
                    prop_assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
                }
            }

            /// Frames past the request-size cap answer `oversized` (the
            /// declared-length check or the bounded line discard — both
            /// surface the same code) and never hang.
            #[test]
            fn oversized_frames_answer_the_typed_code(extra in 0usize..4000) {
                let big = "x".repeat(1500 + extra); // cap is 1024
                let line = encode_frame(&Json::Str(big).render());
                let reply = poke(line.as_bytes()).expect("oversized gets a reply");
                prop_assert_eq!(reply.str_field("error"), Some("oversized"));
            }
        }
    }
}
