//! Inter-procedural interval analysis over the SSA IR.
//!
//! The fixpoint engine is the classic ascending Kleene iteration with
//! widening, followed by bounded narrowing (Cousot & Cousot). On e-SSA
//! form (after [`sraa-essa`] live-range splitting) σ-copies carry branch
//! refinements, which is precisely the program representation Rodrigues et
//! al.'s range analysis — the one the paper uses — operates on.
//!
//! Inter-procedurality mirrors the paper's Section 4: formal parameters
//! behave like φ-functions over the actual arguments of every call site
//! (functions with no internal caller keep ⊤ parameters). This is realised
//! by re-analysing the module a few rounds with parameter/return summaries
//! from the previous round; every round is individually sound, so stopping
//! at any round is safe.
//!
//! [`sraa-essa`]: https://crates.io/crates/sraa-essa

use crate::interval::{Bound, Interval};
use sraa_ir::{
    BinOp, Cfg, CopyOrigin, DefUse, FuncId, Function, InstKind, Module, Pred, Type, Value,
};

/// Configuration for [`analyze_with`].
#[derive(Clone, Copy, Debug)]
pub struct RangeConfig {
    /// Propagate argument/return summaries across calls (paper default).
    pub interprocedural: bool,
    /// Maximum inter-procedural rounds (each round is sound on its own).
    pub max_rounds: usize,
    /// Widening threshold: evaluations of a value before widening kicks in.
    pub widen_after: usize,
    /// Narrowing sweeps after the ascending phase.
    pub narrow_passes: usize,
}

impl Default for RangeConfig {
    fn default() -> Self {
        Self { interprocedural: true, max_rounds: 3, widen_after: 8, narrow_passes: 2 }
    }
}

/// Result of the range analysis: an interval per (function, value).
#[derive(Clone, Debug)]
pub struct RangeAnalysis {
    per_func: Vec<Vec<Interval>>,
}

impl RangeAnalysis {
    /// The interval of `v` in function `f`.
    ///
    /// Values the analysis does not track (pointers, detached
    /// instructions) report ⊤.
    pub fn range(&self, f: FuncId, v: Value) -> Interval {
        self.per_func
            .get(f.index())
            .and_then(|rs| rs.get(v.index()))
            .copied()
            .unwrap_or(Interval::TOP)
    }

    /// Extends the result with a copy's range after a transform inserted
    /// new copy instructions (they inherit their source's interval).
    pub fn extend_copy(&mut self, f: FuncId, new_value: Value, src: Value) {
        let src_range = self.range(f, src);
        let rs = &mut self.per_func[f.index()];
        if rs.len() <= new_value.index() {
            rs.resize(new_value.index() + 1, Interval::TOP);
        }
        rs[new_value.index()] = src_range;
    }
}

/// Analyzes `module` with the default configuration.
pub fn analyze(module: &Module) -> RangeAnalysis {
    analyze_with(module, RangeConfig::default())
}

/// Analyzes `module` with an explicit configuration.
pub fn analyze_with(module: &Module, cfg: RangeConfig) -> RangeAnalysis {
    let nf = module.num_functions();
    // Which functions have at least one internal call site?
    let mut internally_called = vec![false; nf];
    for (_, f) in module.functions() {
        for b in f.block_ids() {
            for (_, data) in f.block_insts(b) {
                if let InstKind::Call { callee, .. } = &data.kind {
                    internally_called[callee.index()] = true;
                }
            }
        }
    }

    let mut summaries = Summaries {
        params: module.functions().map(|(_, f)| vec![Interval::TOP; f.params.len()]).collect(),
        rets: vec![Interval::TOP; nf],
    };

    let rounds = if cfg.interprocedural { cfg.max_rounds.max(1) } else { 1 };
    let mut results: Vec<Vec<Interval>> = Vec::new();
    for _ in 0..rounds {
        results = module
            .functions()
            .map(|(fid, f)| analyze_function(f, fid, module, &summaries, &cfg))
            .collect();
        if !cfg.interprocedural {
            break;
        }
        let next = collect_summaries(module, &results, &internally_called);
        if next == summaries {
            break;
        }
        summaries = next;
    }
    RangeAnalysis { per_func: results }
}

#[derive(Clone, PartialEq)]
struct Summaries {
    /// Per function, per parameter: join of argument intervals over all
    /// internal call sites (⊤ for externally callable functions).
    params: Vec<Vec<Interval>>,
    /// Per function: join of returned intervals.
    rets: Vec<Interval>,
}

fn collect_summaries(
    module: &Module,
    results: &[Vec<Interval>],
    internally_called: &[bool],
) -> Summaries {
    let nf = module.num_functions();
    let mut params: Vec<Vec<Interval>> = module
        .functions()
        .map(|(fid, f)| {
            if internally_called[fid.index()] {
                vec![Interval::BOTTOM; f.params.len()]
            } else {
                vec![Interval::TOP; f.params.len()]
            }
        })
        .collect();
    let mut rets = vec![Interval::BOTTOM; nf];

    for (fid, f) in module.functions() {
        let env = &results[fid.index()];
        let get = |v: Value| env.get(v.index()).copied().unwrap_or(Interval::TOP);
        for b in f.block_ids() {
            for (_, data) in f.block_insts(b) {
                match &data.kind {
                    InstKind::Call { callee, args } if internally_called[callee.index()] => {
                        for (i, a) in args.iter().enumerate() {
                            let slot = &mut params[callee.index()][i];
                            *slot = slot.join(&get(*a));
                        }
                    }
                    InstKind::Ret(Some(v)) => {
                        let slot = &mut rets[fid.index()];
                        *slot = slot.join(&get(*v));
                    }
                    _ => {}
                }
            }
        }
    }
    // Functions that never return a value (or are never analysed) stay ⊥;
    // make them ⊤ so call results are conservative.
    for r in &mut rets {
        if r.is_bottom() {
            *r = Interval::TOP;
        }
    }
    Summaries { params, rets }
}

fn analyze_function(
    f: &Function,
    fid: FuncId,
    module: &Module,
    summaries: &Summaries,
    cfg: &RangeConfig,
) -> Vec<Interval> {
    let nv = f.num_insts();
    let mut env = vec![Interval::BOTTOM; nv];
    let def_use = DefUse::compute(f);
    let cfg_graph = Cfg::compute(f);

    // Extra users for σ-copies: the copy's range depends on *both* cmp
    // operands, not just its source.
    let mut extra_users: Vec<Vec<Value>> = vec![Vec::new(); nv];
    for b in f.block_ids() {
        for (v, data) in f.block_insts(b) {
            if let InstKind::Copy {
                origin: CopyOrigin::SigmaTrue { cmp } | CopyOrigin::SigmaFalse { cmp },
                ..
            } = &data.kind
            {
                if let InstKind::Cmp { lhs, rhs, .. } = &f.inst(*cmp).kind {
                    extra_users[lhs.index()].push(v);
                    extra_users[rhs.index()].push(v);
                }
            }
        }
    }

    // Seed the worklist in reverse post-order for fast convergence.
    let mut worklist: Vec<Value> = Vec::new();
    for &b in cfg_graph.reverse_postorder().iter() {
        for (v, data) in f.block_insts(b) {
            if data.has_result() {
                worklist.push(v);
            }
        }
    }
    worklist.reverse(); // treat as a stack: pop from the end = RPO order

    let mut visits = vec![0usize; nv];
    let mut on_list = vec![true; nv];
    while let Some(v) = worklist.pop() {
        on_list[v.index()] = false;
        let new = eval(f, fid, module, summaries, &env, v);
        let old = env[v.index()];
        let next = if visits[v.index()] >= cfg.widen_after { old.widen(&new) } else { new };
        // Ascending phase: never lose information already gained.
        let next = old.join(&next);
        if next != old {
            visits[v.index()] += 1;
            env[v.index()] = next;
            for u in def_use.uses(v) {
                if f.inst(u.user).has_result() && !on_list[u.user.index()] {
                    on_list[u.user.index()] = true;
                    worklist.push(u.user);
                }
            }
            for &u in &extra_users[v.index()] {
                if !on_list[u.index()] {
                    on_list[u.index()] = true;
                    worklist.push(u);
                }
            }
        }
    }

    // Narrowing sweeps in RPO.
    for _ in 0..cfg.narrow_passes {
        let mut changed = false;
        for &b in &cfg_graph.reverse_postorder() {
            for (v, data) in f.block_insts(b) {
                if !data.has_result() {
                    continue;
                }
                let new = eval(f, fid, module, summaries, &env, v);
                let next = env[v.index()].narrow(&new);
                if next != env[v.index()] {
                    env[v.index()] = next;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    env
}

fn eval(
    f: &Function,
    fid: FuncId,
    module: &Module,
    summaries: &Summaries,
    env: &[Interval],
    v: Value,
) -> Interval {
    let get = |x: Value| env[x.index()];
    let data = f.inst(v);
    // Pointers are not tracked by the interval domain.
    if data.ty.is_some_and(Type::is_ptr) {
        return Interval::TOP;
    }
    match &data.kind {
        InstKind::Const(c) => Interval::constant(*c),
        InstKind::Param(i) => summaries.params[fid.index()][*i as usize],
        InstKind::Binary { op, lhs, rhs } => {
            let a = get(*lhs);
            let b = get(*rhs);
            // ptr − ptr (or any op with an untracked pointer operand) is ⊤.
            if f.value_type(*lhs).is_some_and(Type::is_ptr)
                || f.value_type(*rhs).is_some_and(Type::is_ptr)
            {
                return Interval::TOP;
            }
            match op {
                BinOp::Add => a.add(&b),
                BinOp::Sub => a.sub(&b),
                BinOp::Mul => a.mul(&b),
                BinOp::Div => Interval::TOP,
                BinOp::Rem => a.rem(&b),
            }
        }
        InstKind::Cmp { .. } => Interval::finite(0, 1),
        InstKind::Phi { incomings } => {
            let mut r = Interval::BOTTOM;
            for (_, x) in incomings {
                r = r.join(&get(*x));
            }
            r
        }
        InstKind::Copy { src, origin } => {
            let base = get(*src);
            match origin {
                CopyOrigin::Plain | CopyOrigin::SubSplit { .. } => base,
                CopyOrigin::SigmaTrue { cmp } => {
                    base.meet(&sigma_refinement(f, env, *cmp, *src, true))
                }
                CopyOrigin::SigmaFalse { cmp } => {
                    base.meet(&sigma_refinement(f, env, *cmp, *src, false))
                }
            }
        }
        InstKind::Call { callee, .. } => {
            let _ = module;
            summaries.rets[callee.index()]
        }
        InstKind::Load { .. } | InstKind::Opaque => Interval::TOP,
        InstKind::Alloca { .. }
        | InstKind::Malloc { .. }
        | InstKind::GlobalAddr(_)
        | InstKind::Gep { .. } => Interval::TOP,
        InstKind::Store { .. } | InstKind::Br { .. } | InstKind::Jump(_) | InstKind::Ret(_) => {
            Interval::TOP
        }
    }
}

/// The interval implied for `src` by taking the `taken` edge of the branch
/// guarded by comparison `cmp`.
fn sigma_refinement(
    f: &Function,
    env: &[Interval],
    cmp: Value,
    src: Value,
    taken: bool,
) -> Interval {
    let InstKind::Cmp { pred, lhs, rhs } = &f.inst(cmp).kind else {
        return Interval::TOP;
    };
    // Pointer comparisons refine nothing in the interval domain.
    if f.value_type(*lhs).is_some_and(Type::is_ptr) {
        return Interval::TOP;
    }
    let pred = if taken { *pred } else { pred.negated() };
    let (other, pred) = if src == *lhs {
        (*rhs, pred)
    } else if src == *rhs {
        (*lhs, pred.swapped())
    } else {
        return Interval::TOP;
    };
    let o = env[other.index()];
    if o.is_bottom() {
        return Interval::TOP; // other side not evaluated yet
    }
    // Here `src PRED other` holds.
    match pred {
        Pred::Lt => Interval::new(Bound::NegInf, dec(o.hi())),
        Pred::Le => Interval::new(Bound::NegInf, o.hi()),
        Pred::Gt => Interval::new(inc(o.lo()), Bound::PosInf),
        Pred::Ge => Interval::new(o.lo(), Bound::PosInf),
        Pred::Eq => o,
        Pred::Ne => Interval::TOP,
    }
}

fn dec(b: Bound) -> Bound {
    match b {
        Bound::Fin(v) => Bound::Fin(v.saturating_sub(1)),
        other => other,
    }
}

fn inc(b: Bound) -> Bound {
    match b {
        Bound::Fin(v) => Bound::Fin(v.saturating_add(1)),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraa_ir::FunctionBuilder;

    #[test]
    fn constants_and_arithmetic_fold() {
        let mut m = Module::new();
        let fid = m.declare_function("f", vec![], Some(Type::Int));
        let (a, b, s, p);
        {
            let f = m.function_mut(fid);
            let mut bld = FunctionBuilder::new(f);
            a = bld.iconst(3);
            b = bld.iconst(4);
            s = bld.binary(BinOp::Add, a, b);
            p = bld.binary(BinOp::Mul, s, s);
            bld.ret(Some(p));
            bld.finish();
        }
        let ra = analyze(&m);
        assert_eq!(ra.range(fid, a), Interval::constant(3));
        assert_eq!(ra.range(fid, s), Interval::constant(7));
        assert_eq!(ra.range(fid, p), Interval::constant(49));
    }

    #[test]
    fn loop_counter_widens_to_infinity_without_sigma() {
        // i = phi(0, i+1) — without branch refinement the upper bound is +inf.
        let mut m = Module::new();
        let fid = m.declare_function("f", vec![], None);
        let i;
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let entry = b.current_block();
            let l = b.create_block();
            let z = b.iconst(0);
            let one = b.iconst(1);
            b.jump(l);
            b.switch_to(l);
            i = b.phi(Type::Int);
            let i2 = b.binary(BinOp::Add, i, one);
            b.jump(l);
            b.set_phi_incomings(i, vec![(entry, z), (l, i2)]);
            b.finish();
        }
        let ra = analyze(&m);
        let r = ra.range(fid, i);
        assert_eq!(r.lo(), Bound::Fin(0), "the counter never goes below 0: {r}");
        assert_eq!(r.hi(), Bound::PosInf, "unbounded above: {r}");
    }

    #[test]
    fn sigma_copy_refines_true_branch() {
        // if (x < 10) then x_t has range [-inf, 9], x_f has [10, +inf].
        let mut m = Module::new();
        let fid = m.declare_function("f", vec![("x", Type::Int)], Some(Type::Int));
        let (c, xt, xf);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let t = b.create_block();
            let e = b.create_block();
            let x = b.param(0);
            let ten = b.iconst(10);
            c = b.cmp(Pred::Lt, x, ten);
            b.br(c, t, e);
            b.switch_to(t);
            xt = b.copy(x);
            b.ret(Some(xt));
            b.switch_to(e);
            xf = b.copy(x);
            b.ret(Some(xf));
            b.finish();
        }
        // Rewrite origins to σ-copies (normally the essa pass does this).
        for (v, origin) in
            [(xt, CopyOrigin::SigmaTrue { cmp: c }), (xf, CopyOrigin::SigmaFalse { cmp: c })]
        {
            match &mut m.function_mut(fid).inst_mut(v).kind {
                InstKind::Copy { origin: slot, .. } => *slot = origin,
                _ => unreachable!(),
            }
        }
        let ra = analyze(&m);
        assert_eq!(ra.range(fid, xt).hi(), Bound::Fin(9));
        assert_eq!(ra.range(fid, xf).lo(), Bound::Fin(10));
    }

    #[test]
    fn interprocedural_params_join_call_sites() {
        // g(x) receives 3 and 5 → x ∈ [3, 5].
        let mut m = Module::new();
        let g = m.declare_function("g", vec![("x", Type::Int)], Some(Type::Int));
        {
            let f = m.function_mut(g);
            let mut b = FunctionBuilder::new(f);
            let x = b.param(0);
            b.ret(Some(x));
            b.finish();
        }
        let main = m.declare_function("main", vec![], Some(Type::Int));
        {
            let f = m.function_mut(main);
            let mut b = FunctionBuilder::new(f);
            let three = b.iconst(3);
            let five = b.iconst(5);
            let r1 = b.call(g, vec![three], Some(Type::Int));
            let r2 = b.call(g, vec![five], Some(Type::Int));
            let s = b.binary(BinOp::Add, r1, r2);
            b.ret(Some(s));
            b.finish();
        }
        let ra = analyze(&m);
        let xp = m.function(g).param_value(0);
        assert_eq!(ra.range(g, xp), Interval::finite(3, 5));
        // And the call results use g's return summary.
        let s_range = ra.range(main, Value::from_index(m.function(main).num_insts() - 2));
        assert!(s_range.contains(8), "3+5 via return summaries: {s_range}");
    }

    #[test]
    fn entry_functions_keep_top_params() {
        let mut m = Module::new();
        let fid = m.declare_function("main", vec![("argc", Type::Int)], None);
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            b.ret(None);
            b.finish();
        }
        let ra = analyze(&m);
        assert!(ra.range(fid, m.function(fid).param_value(0)).is_top());
    }

    #[test]
    fn extend_copy_inherits_range() {
        let mut m = Module::new();
        let fid = m.declare_function("f", vec![], None);
        let c;
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            c = b.iconst(7);
            b.ret(None);
            b.finish();
        }
        let mut ra = analyze(&m);
        // Simulate a transform adding a copy of c.
        let f = m.function_mut(fid);
        let cp = f.new_inst(InstKind::Copy { src: c, origin: CopyOrigin::Plain }, Some(Type::Int));
        ra.extend_copy(fid, cp, c);
        assert_eq!(ra.range(fid, cp), Interval::constant(7));
    }
}
