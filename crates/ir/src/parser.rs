//! Parser for the textual IR format produced by [`printer`](crate::printer).
//!
//! The format is self-describing (result types are explicit), so parsing is
//! a single recursive-descent pass per function preceded by two pre-scans:
//! one that collects module-level declarations (globals and function
//! signatures, so calls can be resolved), and one per function that
//! collects block labels and value definitions (so φ-functions can forward
//! reference both).

use crate::ids::{BlockId, FuncId, GlobalId, Value};
use crate::inst::{BinOp, CopyOrigin, InstKind, Pred};
use crate::module::Module;
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error was detected on.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Percent,
    At,
    Colon,
    Comma,
    Eq,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Arrow,
    Star,
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: u32,
}

fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1u32;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '%' => {
                chars.next();
                out.push(Spanned { tok: Tok::Percent, line });
            }
            '@' => {
                chars.next();
                out.push(Spanned { tok: Tok::At, line });
            }
            ':' => {
                chars.next();
                out.push(Spanned { tok: Tok::Colon, line });
            }
            ',' => {
                chars.next();
                out.push(Spanned { tok: Tok::Comma, line });
            }
            '=' => {
                chars.next();
                out.push(Spanned { tok: Tok::Eq, line });
            }
            '(' => {
                chars.next();
                out.push(Spanned { tok: Tok::LParen, line });
            }
            ')' => {
                chars.next();
                out.push(Spanned { tok: Tok::RParen, line });
            }
            '[' => {
                chars.next();
                out.push(Spanned { tok: Tok::LBracket, line });
            }
            ']' => {
                chars.next();
                out.push(Spanned { tok: Tok::RBracket, line });
            }
            '{' => {
                chars.next();
                out.push(Spanned { tok: Tok::LBrace, line });
            }
            '}' => {
                chars.next();
                out.push(Spanned { tok: Tok::RBrace, line });
            }
            '*' => {
                chars.next();
                out.push(Spanned { tok: Tok::Star, line });
            }
            '-' => {
                chars.next();
                match chars.peek() {
                    Some('>') => {
                        chars.next();
                        out.push(Spanned { tok: Tok::Arrow, line });
                    }
                    Some(d) if d.is_ascii_digit() => {
                        let mut n = String::from("-");
                        while let Some(&d) = chars.peek() {
                            if d.is_ascii_digit() {
                                n.push(d);
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        let v = n.parse().map_err(|_| ParseError {
                            line,
                            message: format!("invalid integer `{n}`"),
                        })?;
                        out.push(Spanned { tok: Tok::Int(v), line });
                    }
                    _ => {
                        return Err(ParseError { line, message: "stray `-`".into() });
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        n.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v = n
                    .parse()
                    .map_err(|_| ParseError { line, message: format!("invalid integer `{n}`") })?;
                out.push(Spanned { tok: Tok::Int(v), line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut id = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' || d == '.' {
                        id.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Spanned { tok: Tok::Ident(id), line });
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))).map_or(0, |s| s.line)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line(), message: message.into() }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        match self.bump() {
            Some(got) if got == t => Ok(()),
            got => Err(ParseError {
                line: self.toks.get(self.pos - 1).map_or(0, |s| s.line),
                message: format!("expected {t:?}, got {got:?}"),
            }),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            got => Err(ParseError {
                line: self.toks.get(self.pos - 1).map_or(0, |s| s.line),
                message: format!("expected identifier, got {got:?}"),
            }),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, got `{id}`")))
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(v),
            got => Err(ParseError {
                line: self.toks.get(self.pos - 1).map_or(0, |s| s.line),
                message: format!("expected integer, got {got:?}"),
            }),
        }
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        self.expect_keyword("int")?;
        let mut depth = 0u8;
        while self.peek() == Some(&Tok::Star) {
            self.bump();
            depth += 1;
        }
        Ok(if depth == 0 { Type::Int } else { Type::Ptr(depth) })
    }
}

/// Parses the textual format into a [`Module`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax or resolution
/// problem encountered.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut module = Module::new();
    let mut global_ids: HashMap<String, GlobalId> = HashMap::new();
    let mut func_ids: HashMap<String, FuncId> = HashMap::new();

    // Pre-scan: declare globals and function signatures.
    {
        let save = p.pos;
        while p.peek().is_some() {
            match p.peek() {
                Some(Tok::Ident(k)) if k == "global" => {
                    p.bump();
                    p.expect(Tok::At)?;
                    let name = p.expect_ident()?;
                    p.expect(Tok::Colon)?;
                    let ty = p.parse_type()?;
                    p.expect(Tok::LBracket)?;
                    let count = p.expect_int()?;
                    p.expect(Tok::RBracket)?;
                    if count < 0 {
                        return Err(p.err("global size must be non-negative"));
                    }
                    let id = module.declare_global(name.clone(), ty, count as u32);
                    global_ids.insert(name, id);
                }
                Some(Tok::Ident(k)) if k == "func" => {
                    p.bump();
                    p.expect(Tok::At)?;
                    let name = p.expect_ident()?;
                    p.expect(Tok::LParen)?;
                    let mut params: Vec<(String, Type)> = Vec::new();
                    while p.peek() != Some(&Tok::RParen) {
                        if !params.is_empty() {
                            p.expect(Tok::Comma)?;
                        }
                        p.expect(Tok::Percent)?;
                        let pname = p.expect_ident()?;
                        p.expect(Tok::Colon)?;
                        let ty = p.parse_type()?;
                        params.push((pname, ty));
                    }
                    p.expect(Tok::RParen)?;
                    let ret_ty = if p.peek() == Some(&Tok::Arrow) {
                        p.bump();
                        Some(p.parse_type()?)
                    } else {
                        None
                    };
                    let id = module.declare_function(
                        name.clone(),
                        params.iter().map(|(n, t)| (n.as_str(), *t)).collect(),
                        ret_ty,
                    );
                    func_ids.insert(name, id);
                    // Skip the body.
                    p.expect(Tok::LBrace)?;
                    let mut depth = 1;
                    while depth > 0 {
                        match p.bump() {
                            Some(Tok::LBrace) => depth += 1,
                            Some(Tok::RBrace) => depth -= 1,
                            Some(_) => {}
                            None => return Err(p.err("unterminated function body")),
                        }
                    }
                }
                _ => return Err(p.err("expected `global` or `func` at top level")),
            }
        }
        p.pos = save;
    }

    // Main pass: fill in bodies.
    while p.peek().is_some() {
        match p.peek() {
            Some(Tok::Ident(k)) if k == "global" => {
                // Already declared; skip the declaration tokens.
                p.bump();
                p.expect(Tok::At)?;
                p.expect_ident()?;
                p.expect(Tok::Colon)?;
                p.parse_type()?;
                p.expect(Tok::LBracket)?;
                p.expect_int()?;
                p.expect(Tok::RBracket)?;
            }
            Some(Tok::Ident(k)) if k == "func" => {
                parse_function_body(&mut p, &mut module, &global_ids, &func_ids)?;
            }
            _ => return Err(p.err("expected `global` or `func` at top level")),
        }
    }
    Ok(module)
}

fn parse_function_body(
    p: &mut Parser,
    module: &mut Module,
    global_ids: &HashMap<String, GlobalId>,
    func_ids: &HashMap<String, FuncId>,
) -> Result<(), ParseError> {
    p.expect_keyword("func")?;
    p.expect(Tok::At)?;
    let name = p.expect_ident()?;
    let fid = func_ids[&name];

    // Re-parse the header to bind parameter names.
    let mut value_names: HashMap<String, Value> = HashMap::new();
    p.expect(Tok::LParen)?;
    let mut idx = 0usize;
    while p.peek() != Some(&Tok::RParen) {
        if idx > 0 {
            p.expect(Tok::Comma)?;
        }
        p.expect(Tok::Percent)?;
        let pname = p.expect_ident()?;
        p.expect(Tok::Colon)?;
        p.parse_type()?;
        value_names.insert(pname, module.function(fid).param_value(idx));
        idx += 1;
    }
    p.expect(Tok::RParen)?;
    if p.peek() == Some(&Tok::Arrow) {
        p.bump();
        p.parse_type()?;
    }
    p.expect(Tok::LBrace)?;

    // Pre-scan the body (up to the matching brace) for labels and defs.
    let body_start = p.pos;
    let mut block_names: HashMap<String, BlockId> = HashMap::new();
    {
        let mut depth = 0usize; // bracket depth for phi incomings
        let mut label_order: Vec<String> = Vec::new();
        let mut defs: Vec<(String, Type)> = Vec::new();
        let mut i = p.pos;
        while i < p.toks.len() {
            match &p.toks[i].tok {
                Tok::RBrace => break,
                Tok::LBracket => depth += 1,
                Tok::RBracket => depth = depth.saturating_sub(1),
                Tok::Ident(id) if depth == 0 => {
                    let prev_is_percent = i > 0 && p.toks[i - 1].tok == Tok::Percent;
                    let next_is_colon = p.toks.get(i + 1).map(|s| &s.tok) == Some(&Tok::Colon);
                    if next_is_colon && !prev_is_percent {
                        label_order.push(id.clone());
                    } else if next_is_colon && prev_is_percent {
                        // `%name: ty =` — a definition. Parse its type.
                        let mut q = Parser { toks: p.toks.clone(), pos: i + 2 };
                        let ty = q.parse_type()?;
                        if q.peek() == Some(&Tok::Eq) {
                            defs.push((id.clone(), ty));
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Map labels to blocks: first label is the entry.
        for (k, label) in label_order.iter().enumerate() {
            let bb = if k == 0 {
                module.function(fid).entry()
            } else {
                module.function_mut(fid).add_block()
            };
            if block_names.insert(label.clone(), bb).is_some() {
                return Err(p.err(format!("duplicate block label `{label}`")));
            }
        }
        // Reserve values for all defs (so φs can forward-reference them).
        for (dname, ty) in defs {
            let v = module.function_mut(fid).new_inst(InstKind::Opaque, Some(ty));
            if value_names.insert(dname.clone(), v).is_some() {
                return Err(p.err(format!("duplicate value name `%{dname}`")));
            }
        }
    }
    p.pos = body_start;

    // Parse statements.
    let mut current: Option<BlockId> = None;
    loop {
        match p.peek() {
            Some(Tok::RBrace) => {
                p.bump();
                break;
            }
            Some(Tok::Ident(_)) if p.peek2() == Some(&Tok::Colon) => {
                let label = p.expect_ident()?;
                p.expect(Tok::Colon)?;
                current = Some(block_names[&label]);
            }
            Some(_) => {
                let bb = current.ok_or_else(|| p.err("statement before first block label"))?;
                parse_statement(
                    p,
                    module,
                    fid,
                    bb,
                    &value_names,
                    &block_names,
                    global_ids,
                    func_ids,
                )?;
            }
            None => return Err(p.err("unterminated function body")),
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn parse_statement(
    p: &mut Parser,
    module: &mut Module,
    fid: FuncId,
    bb: BlockId,
    values: &HashMap<String, Value>,
    blocks: &HashMap<String, BlockId>,
    global_ids: &HashMap<String, GlobalId>,
    func_ids: &HashMap<String, FuncId>,
) -> Result<(), ParseError> {
    let value_ref = |p: &mut Parser| -> Result<Value, ParseError> {
        p.expect(Tok::Percent)?;
        let n = p.expect_ident()?;
        values.get(&n).copied().ok_or_else(|| p.err(format!("unknown value `%{n}`")))
    };
    let block_ref = |p: &mut Parser| -> Result<BlockId, ParseError> {
        let n = p.expect_ident()?;
        blocks.get(&n).copied().ok_or_else(|| p.err(format!("unknown block `{n}`")))
    };

    match p.peek() {
        Some(Tok::Percent) => {
            // `%name: ty = expr`
            p.bump();
            let name = p.expect_ident()?;
            let v = values[&name];
            p.expect(Tok::Colon)?;
            let ty = p.parse_type()?;
            p.expect(Tok::Eq)?;
            let op = p.expect_ident()?;
            let kind = match op.as_str() {
                "const" => InstKind::Const(p.expect_int()?),
                "add" | "sub" | "mul" | "div" | "rem" => {
                    let binop = match op.as_str() {
                        "add" => BinOp::Add,
                        "sub" => BinOp::Sub,
                        "mul" => BinOp::Mul,
                        "div" => BinOp::Div,
                        _ => BinOp::Rem,
                    };
                    let lhs = value_ref(p)?;
                    p.expect(Tok::Comma)?;
                    let rhs = value_ref(p)?;
                    InstKind::Binary { op: binop, lhs, rhs }
                }
                "cmp" => {
                    let pred = match p.expect_ident()?.as_str() {
                        "lt" => Pred::Lt,
                        "le" => Pred::Le,
                        "gt" => Pred::Gt,
                        "ge" => Pred::Ge,
                        "eq" => Pred::Eq,
                        "ne" => Pred::Ne,
                        other => return Err(p.err(format!("unknown predicate `{other}`"))),
                    };
                    let lhs = value_ref(p)?;
                    p.expect(Tok::Comma)?;
                    let rhs = value_ref(p)?;
                    InstKind::Cmp { pred, lhs, rhs }
                }
                "phi" => {
                    let mut incomings = Vec::new();
                    loop {
                        p.expect(Tok::LBracket)?;
                        let b = block_ref(p)?;
                        p.expect(Tok::Colon)?;
                        let v = value_ref(p)?;
                        p.expect(Tok::RBracket)?;
                        incomings.push((b, v));
                        if p.peek() == Some(&Tok::Comma) {
                            p.bump();
                        } else {
                            break;
                        }
                    }
                    InstKind::Phi { incomings }
                }
                "copy" => {
                    let src = value_ref(p)?;
                    let origin = match p.peek() {
                        Some(Tok::Ident(k))
                            if k == "sigma_t" || k == "sigma_f" || k == "subsplit" =>
                        {
                            let k = p.expect_ident()?;
                            p.expect(Tok::LParen)?;
                            let v = value_ref(p)?;
                            p.expect(Tok::RParen)?;
                            match k.as_str() {
                                "sigma_t" => CopyOrigin::SigmaTrue { cmp: v },
                                "sigma_f" => CopyOrigin::SigmaFalse { cmp: v },
                                _ => CopyOrigin::SubSplit { sub: v },
                            }
                        }
                        _ => CopyOrigin::Plain,
                    };
                    InstKind::Copy { src, origin }
                }
                "alloca" => InstKind::Alloca { count: value_ref(p)? },
                "malloc" => InstKind::Malloc { count: value_ref(p)? },
                "globaladdr" => {
                    p.expect(Tok::At)?;
                    let n = p.expect_ident()?;
                    let g = *global_ids
                        .get(&n)
                        .ok_or_else(|| p.err(format!("unknown global `@{n}`")))?;
                    InstKind::GlobalAddr(g)
                }
                "gep" => {
                    let base = value_ref(p)?;
                    p.expect(Tok::Comma)?;
                    let offset = value_ref(p)?;
                    InstKind::Gep { base, offset }
                }
                "load" => InstKind::Load { ptr: value_ref(p)? },
                "call" => parse_call(p, values, func_ids)?,
                "opaque" => InstKind::Opaque,
                other => return Err(p.err(format!("unknown opcode `{other}`"))),
            };
            let f = module.function_mut(fid);
            let data = f.inst_mut(v);
            data.kind = kind;
            data.ty = Some(ty);
            let at = f.block(bb).insts.len();
            f.attach_inst(bb, at, v);
            Ok(())
        }
        Some(Tok::Ident(k)) => match k.as_str() {
            "store" => {
                p.bump();
                let ptr = value_ref(p)?;
                p.expect(Tok::Comma)?;
                let value = value_ref(p)?;
                module.function_mut(fid).append_inst(bb, InstKind::Store { ptr, value }, None);
                Ok(())
            }
            "call" => {
                p.bump();
                let kind = parse_call(p, values, func_ids)?;
                module.function_mut(fid).append_inst(bb, kind, None);
                Ok(())
            }
            "br" => {
                p.bump();
                let cond = value_ref(p)?;
                p.expect(Tok::Comma)?;
                let then_bb = block_ref(p)?;
                p.expect(Tok::Comma)?;
                let else_bb = block_ref(p)?;
                module.function_mut(fid).append_inst(
                    bb,
                    InstKind::Br { cond, then_bb, else_bb },
                    None,
                );
                Ok(())
            }
            "jump" => {
                p.bump();
                let t = block_ref(p)?;
                module.function_mut(fid).append_inst(bb, InstKind::Jump(t), None);
                Ok(())
            }
            "ret" => {
                p.bump();
                let v = if p.peek() == Some(&Tok::Percent) { Some(value_ref(p)?) } else { None };
                module.function_mut(fid).append_inst(bb, InstKind::Ret(v), None);
                Ok(())
            }
            other => Err(p.err(format!("unknown statement `{other}`"))),
        },
        other => Err(p.err(format!("unexpected token {other:?}"))),
    }
}

fn parse_call(
    p: &mut Parser,
    values: &HashMap<String, Value>,
    func_ids: &HashMap<String, FuncId>,
) -> Result<InstKind, ParseError> {
    p.expect(Tok::At)?;
    let n = p.expect_ident()?;
    let callee = *func_ids.get(&n).ok_or_else(|| p.err(format!("unknown function `@{n}`")))?;
    p.expect(Tok::LParen)?;
    let mut args = Vec::new();
    while p.peek() != Some(&Tok::RParen) {
        if !args.is_empty() {
            p.expect(Tok::Comma)?;
        }
        p.expect(Tok::Percent)?;
        let an = p.expect_ident()?;
        let v = values.get(&an).copied().ok_or_else(|| p.err(format!("unknown value `%{an}`")))?;
        args.push(v);
    }
    p.expect(Tok::RParen)?;
    Ok(InstKind::Call { callee, args })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    const SAMPLE: &str = r#"
global @buf: int[16]

func @id(%x: int) -> int {
bb0:
  ret %x
}

func @main() -> int {
bb0:
  %zero: int = const 0
  %one: int = const 1
  %p: int* = globaladdr @buf
  jump bb1
bb1:
  %i: int = phi [bb0: %zero], [bb1: %i2]
  %q: int* = gep %p, %i
  store %q, %i
  %i2: int = add %i, %one
  %c: int = cmp lt %i2, %one
  br %c, bb1, bb2
bb2:
  %r: int = call @id(%i2)
  ret %r
}
"#;

    #[test]
    fn parses_sample() {
        let m = parse_module(SAMPLE).expect("should parse");
        assert_eq!(m.num_functions(), 2);
        assert_eq!(m.num_globals(), 1);
        let main = m.function(m.function_by_name("main").unwrap());
        assert_eq!(main.num_blocks(), 3);
        crate::verifier::verify(&m).expect("sample should verify");
    }

    #[test]
    fn print_parse_round_trip_stabilises() {
        let m = parse_module(SAMPLE).unwrap();
        let p1 = print_module(&m);
        let m1 = parse_module(&p1).expect("printer output should reparse");
        let p2 = print_module(&m1);
        let m2 = parse_module(&p2).unwrap();
        assert_eq!(p2, print_module(&m2), "print∘parse must be idempotent");
    }

    #[test]
    fn forward_phi_reference_and_negative_const() {
        let src = r#"
func @f() -> int {
bb0:
  %a: int = const -5
  jump bb1
bb1:
  %x: int = phi [bb0: %a], [bb1: %y]
  %y: int = add %x, %a
  jump bb1
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function(m.function_by_name("f").unwrap());
        assert_eq!(f.num_blocks(), 2);
    }

    #[test]
    fn unknown_value_is_an_error() {
        let src = "func @f() {\nbb0:\n  ret %nope\n}\n";
        let e = parse_module(src).unwrap_err();
        assert!(e.message.contains("unknown value"), "{e}");
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let src = "func @f() {\nbb0:\n  jump bb0\nbb0:\n  ret\n}\n";
        let e = parse_module(src).unwrap_err();
        assert!(e.message.contains("duplicate block label"), "{e}");
    }

    #[test]
    fn comments_are_skipped() {
        let src = "# header\nfunc @f() {\nbb0: # entry\n  ret\n}\n";
        parse_module(src).unwrap();
    }

    #[test]
    fn copy_origins_round_trip() {
        let src = r#"
func @f(%x: int, %y: int) {
bb0:
  %c: int = cmp lt %x, %y
  br %c, bb1, bb2
bb1:
  %xt: int = copy %x sigma_t(%c)
  ret
bb2:
  %xf: int = copy %x sigma_f(%c)
  %s: int = sub %y, %x
  %ys: int = copy %y subsplit(%s)
  ret
}
"#;
        let m = parse_module(src).unwrap();
        let p1 = print_module(&m);
        assert!(p1.contains("sigma_t("));
        assert!(p1.contains("sigma_f("));
        assert!(p1.contains("subsplit("));
        let m2 = parse_module(&p1).unwrap();
        assert_eq!(print_module(&m2), p1);
    }
}
