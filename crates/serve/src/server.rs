//! The resident daemon: accept loop, per-connection frame handling and
//! the request dispatcher.
//!
//! One [`Server`] owns the listening socket and the resident state — the
//! uploaded modules, each with its solved [`DisambiguationEngine`] behind
//! an `Arc`, its pre-rendered `eval` report and its in-memory summary
//! cache. Connections are served by scoped threads off a polling accept
//! loop (the PR 7 scheduler idiom: `std::thread::scope`, no detached
//! threads), so shutdown is a drain: the flag flips, the accept loop
//! stops, and `scope` waits for every in-flight connection to finish its
//! current frame and notice the flag.
//!
//! Robustness contract, exercised by the protocol fuzz test: any byte
//! sequence a client sends yields a typed error reply or a clean close —
//! never a panic, and never a hang beyond the per-connection read
//! timeout. Oversized frames are discarded to the next newline (bounded)
//! and answered with the `oversized` code instead of killing the
//! connection.

use crate::protocol::{self, error_reply, obj, FrameError, Json};
use crate::stats::ServeStats;
use sraa_alias::{render_eval, AaEval, StrictInequalityAa};
use sraa_core::{DisambiguationEngine, EngineConfig, SharedSummaryStore, SummaryCache};
use sraa_ir::{FuncId, Module, Value};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Accept-poll and read-poll granularity: how quickly an idle handler
/// notices the shutdown flag.
const TICK: Duration = Duration::from_millis(25);

/// How long a blocked reply write may stall before the connection is
/// dropped (a stuck client must not wedge the drain).
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Tuning knobs for one daemon.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Engine configuration for uploads. `Contextuality::Summaries`
    /// is forced — the daemon's
    /// incremental re-upload path needs summaries; solver, lattice and
    /// jobs knobs are honoured.
    pub engine: EngineConfig,
    /// Per-connection idle timeout: a connection that sends no byte for
    /// this long is closed.
    pub read_timeout: Duration,
    /// Request-size cap on the declared frame length.
    pub max_frame: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            engine: EngineConfig::default(),
            read_timeout: Duration::from_secs(10),
            max_frame: protocol::MAX_FRAME,
        }
    }
}

/// One uploaded module, fully solved and resident. Queries never touch
/// the engine-construction path again: `no-alias`/`lt` hit the memoized
/// engine, `eval` returns the pre-rendered report.
struct ModuleEntry {
    /// The module in e-SSA form (what the engine was built on).
    module: Module,
    /// The solved engine, shared with every connection thread.
    lt: StrictInequalityAa,
    /// `sraa eval` stdout for this module, rendered once at upload.
    eval_text: String,
    /// In-memory summary cache for the *next* upload of this name.
    cache: SummaryCache,
}

struct Daemon {
    cfg: ServerConfig,
    modules: RwLock<HashMap<String, Arc<ModuleEntry>>>,
    /// Warm-start summaries from `--summary-cache`, used as the prior for
    /// the first upload of each module name.
    warm: Option<SummaryCache>,
    /// Resident content-addressed store (`--shared-store`): consulted —
    /// after a directory refresh, so live peer daemons' segments are
    /// seen — and published to on every upload.
    store: Option<SharedSummaryStore>,
    stats: ServeStats,
    shutdown: Arc<AtomicBool>,
}

enum Listener {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

enum Stream {
    #[cfg(unix)]
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn configure(&self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(TICK))?;
                s.set_write_timeout(Some(WRITE_TIMEOUT))
            }
            Stream::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(TICK))?;
                s.set_write_timeout(Some(WRITE_TIMEOUT))
            }
        }
    }

    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks until
/// shutdown (the `shutdown` frame, or the flag from
/// [`Server::shutdown_flag`] — the CLI wires SIGTERM to it).
pub struct Server {
    listener: Listener,
    daemon: Daemon,
    sock_path: Option<PathBuf>,
}

impl Server {
    /// Binds a Unix-socket daemon at `path` (refusing to clobber an
    /// existing file is left to the caller; a stale socket file is
    /// removed first, matching common daemon practice).
    #[cfg(unix)]
    pub fn bind_unix(path: impl Into<PathBuf>, cfg: ServerConfig) -> std::io::Result<Server> {
        let path = path.into();
        if path.exists() {
            std::fs::remove_file(&path)?;
        }
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener: Listener::Unix(listener),
            daemon: Daemon::new(cfg),
            sock_path: Some(path),
        })
    }

    /// Binds a TCP daemon at `addr` (use port 0 for an ephemeral port,
    /// then read it back with [`Server::tcp_addr`]).
    pub fn bind_tcp(addr: impl ToSocketAddrs, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server { listener: Listener::Tcp(listener), daemon: Daemon::new(cfg), sock_path: None })
    }

    /// The bound TCP address (`None` for Unix-socket servers).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            _ => None,
        }
    }

    /// Seeds the daemon with warm-start summaries (the CLI's
    /// `--summary-cache`): the first upload of every module name is
    /// classified against these instead of solving cold.
    pub fn with_warm_cache(mut self, cache: SummaryCache) -> Self {
        self.daemon.warm = Some(cache);
        self
    }

    /// Attaches a resident [`SharedSummaryStore`] (the CLI's
    /// `--shared-store`): every upload consults it by content-addressed
    /// key — across module names, and across any other daemon or
    /// one-shot run sharing the directory — and publishes its solved
    /// summaries back.
    pub fn with_shared_store(mut self, store: SharedSummaryStore) -> Self {
        self.daemon.store = Some(store);
        self
    }

    /// The flag that stops [`Server::run`]. Store `true` (any thread, a
    /// signal handler included — it is a plain atomic) to begin a
    /// graceful drain.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.daemon.shutdown)
    }

    /// Daemon-lifetime counters (stable after [`Server::run`] returns).
    pub fn stats(&self) -> &ServeStats {
        &self.daemon.stats
    }

    /// Number of modules currently resident.
    pub fn num_modules(&self) -> usize {
        self.daemon.modules_read().len()
    }

    /// Serves until shutdown, then drains in-flight connections and
    /// removes the Unix socket file. Connection-level IO errors are
    /// absorbed (that connection closes); only accept-loop failures
    /// surface.
    pub fn run(&self) -> std::io::Result<()> {
        let daemon = &self.daemon;
        std::thread::scope(|scope| {
            while !daemon.shutdown.load(Ordering::SeqCst) {
                let accepted = match &self.listener {
                    #[cfg(unix)]
                    Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
                    Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
                };
                match accepted {
                    Ok(stream) => {
                        // Absorb handler panics: a scoped thread that
                        // unwinds re-throws at scope exit, which would
                        // turn one bad connection into a daemon crash at
                        // drain time. The daemon's shared state survives
                        // a mid-handler panic (locks recover via
                        // `into_inner`; the maps are never half-updated),
                        // so count it and keep serving.
                        scope.spawn(move || {
                            let handler = std::panic::AssertUnwindSafe(|| {
                                handle_conn(daemon, stream);
                            });
                            if std::panic::catch_unwind(handler).is_err() {
                                daemon.stats.panics.fetch_add(1, Ordering::Relaxed);
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(TICK);
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })?;
        if let Some(path) = &self.sock_path {
            std::fs::remove_file(path).ok();
        }
        Ok(())
    }
}

impl Daemon {
    fn new(cfg: ServerConfig) -> Daemon {
        Daemon {
            cfg,
            modules: RwLock::new(HashMap::new()),
            warm: None,
            store: None,
            stats: ServeStats::default(),
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The modules map, recovering from a poisoned lock: the map is
    /// only ever mutated by a single `insert` call, so a panic elsewhere
    /// in the holder can never leave it half-updated. Before this
    /// recovery, one panicking connection thread cascaded into a panic
    /// on every subsequent request that touched the map.
    fn modules_read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<ModuleEntry>>> {
        self.modules.read().unwrap_or_else(|e| e.into_inner())
    }

    fn modules_write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<ModuleEntry>>> {
        self.modules.write().unwrap_or_else(|e| e.into_inner())
    }

    fn entry(&self, name: &str) -> Option<Arc<ModuleEntry>> {
        self.modules_read().get(name).cloned()
    }
}

/// What one frame produced: the reply frames (one for point requests,
/// a stream for `pairs`) and how to account for it.
struct Outcome {
    frames: Vec<Json>,
    kind: ReqKind,
    shutdown: bool,
}

enum ReqKind {
    Query,
    Upload,
    Error,
}

impl Outcome {
    fn reply(v: Json) -> Outcome {
        Outcome { frames: vec![v], kind: ReqKind::Query, shutdown: false }
    }

    fn error(code: &str, detail: impl Into<String>) -> Outcome {
        Outcome { frames: vec![error_reply(code, detail)], kind: ReqKind::Error, shutdown: false }
    }
}

fn handle_conn(daemon: &Daemon, stream: Stream) {
    daemon.stats.connections.fetch_add(1, Ordering::Relaxed);
    if stream.configure().is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let line = match read_frame_line(daemon, &mut reader) {
            LineRead::Line(l) => l,
            LineRead::Oversized => {
                daemon.stats.frames.fetch_add(1, Ordering::Relaxed);
                daemon.stats.errors.fetch_add(1, Ordering::Relaxed);
                let reply = error_reply(FrameError::Oversized.code(), "frame exceeds size cap");
                if write_frame(&mut writer, &reply).is_err() {
                    return;
                }
                continue;
            }
            LineRead::Closed => return,
        };
        daemon.stats.frames.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let outcome = process_line(daemon, &line);
        for frame in &outcome.frames {
            if write_frame(&mut writer, frame).is_err() {
                return;
            }
        }
        match outcome.kind {
            ReqKind::Query => {
                daemon.stats.queries.fetch_add(1, Ordering::Relaxed);
                daemon.stats.record_latency(t0.elapsed().as_micros() as u64);
            }
            ReqKind::Upload => {
                daemon.stats.uploads.fetch_add(1, Ordering::Relaxed);
            }
            ReqKind::Error => {
                daemon.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        if outcome.shutdown {
            daemon.shutdown.store(true, Ordering::SeqCst);
            return;
        }
    }
}

enum LineRead {
    /// One complete line (newline stripped is NOT done here; the decoder
    /// strips it).
    Line(Vec<u8>),
    /// The line outgrew the cap and was discarded up to its newline.
    Oversized,
    /// EOF, idle timeout, IO error, or shutdown drain — close quietly.
    Closed,
}

/// Reads one newline-terminated line under the daemon's timeout and size
/// rules. Reads tick every [`TICK`] so the shutdown flag is noticed
/// quickly; a partial frame in flight is still given until the idle
/// deadline to complete (that is the "drain in-flight requests" half of
/// graceful shutdown).
fn read_frame_line(daemon: &Daemon, reader: &mut BufReader<Stream>) -> LineRead {
    // Header slack on top of the payload cap: magic + two tokens.
    let max_line = daemon.cfg.max_frame + 64;
    // An oversized line is discarded to its newline so the connection
    // survives, but only up to a bound — a firehose with no newline at
    // all is cut off.
    let max_discard = daemon.cfg.max_frame.saturating_mul(4) + 1024;
    let mut line = Vec::new();
    let mut discarding = false;
    let mut discarded = 0usize;
    let mut last_byte = Instant::now();
    loop {
        let before = line.len();
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return LineRead::Closed, // EOF
            Ok(_) => {
                last_byte = Instant::now();
                if line.last() == Some(&b'\n') {
                    return if discarding { LineRead::Oversized } else { LineRead::Line(line) };
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if line.len() > before {
                    last_byte = Instant::now();
                }
                if line.is_empty() && daemon.shutdown.load(Ordering::SeqCst) {
                    return LineRead::Closed; // drained: no frame in flight
                }
                if last_byte.elapsed() >= daemon.cfg.read_timeout {
                    return LineRead::Closed; // idle or stalled mid-frame
                }
            }
            Err(_) => return LineRead::Closed,
        }
        if !discarding && line.len() > max_line {
            discarding = true;
        }
        if discarding {
            discarded += line.len();
            line.clear();
            if discarded > max_discard {
                return LineRead::Closed;
            }
        }
    }
}

fn write_frame(writer: &mut Stream, frame: &Json) -> std::io::Result<()> {
    writer.write_all(protocol::encode_frame(&frame.render()).as_bytes())?;
    writer.flush()
}

fn process_line(daemon: &Daemon, line: &[u8]) -> Outcome {
    let Ok(text) = std::str::from_utf8(line) else {
        return Outcome::error("bad-utf8", "frame is not UTF-8");
    };
    let payload = match protocol::decode_frame(text, daemon.cfg.max_frame) {
        Ok(p) => p,
        Err(e) => return Outcome::error(e.code(), e.to_string()),
    };
    let req = match protocol::parse(payload) {
        Ok(v) => v,
        Err(e) => return Outcome::error("bad-json", e.to_string()),
    };
    dispatch(daemon, &req)
}

fn dispatch(daemon: &Daemon, req: &Json) -> Outcome {
    let Some(cmd) = req.str_field("cmd") else {
        return Outcome::error("bad-request", "missing `cmd` field");
    };
    match cmd {
        "upload" => cmd_upload(daemon, req),
        "no-alias" => cmd_pair(daemon, req, PairKind::NoAlias),
        "lt" => cmd_pair(daemon, req, PairKind::Lt),
        "eval" => cmd_eval(daemon, req),
        "pairs" => cmd_pairs(daemon, req),
        "stats" => {
            let modules = daemon.modules_read().len();
            Outcome::reply(daemon.stats.snapshot(modules))
        }
        // Debug-build fault injection for the liveness regression test:
        // panic in this connection thread *while holding* the modules
        // write lock — exactly the failure that used to wedge the daemon
        // (poisoned lock + scope-exit panic rethrow). Release builds
        // fall through to `unknown-cmd`.
        #[cfg(debug_assertions)]
        "debug-poison" => {
            let _guard = daemon.modules.write().unwrap_or_else(|e| e.into_inner());
            panic!("debug-poison: deliberate panic while holding the modules lock");
        }
        "shutdown" => Outcome {
            frames: vec![obj([("ok", Json::Bool(true)), ("stopping", Json::Bool(true))])],
            kind: ReqKind::Query,
            shutdown: true,
        },
        other => Outcome::error("unknown-cmd", format!("unknown command `{other}`")),
    }
}

fn cmd_upload(daemon: &Daemon, req: &Json) -> Outcome {
    let (Some(name), Some(source)) = (req.str_field("name"), req.str_field("source")) else {
        return Outcome::error("bad-request", "upload needs `name` and `source`");
    };
    if name.is_empty() {
        return Outcome::error("bad-request", "module name must be non-empty");
    }
    let mut module = match sraa_minic::compile(source) {
        Ok(m) => m,
        Err(e) => return Outcome::error("compile-error", e.to_string()),
    };
    // Prior summaries: the resident entry if this is a re-upload, else
    // the warm-start file. The engine classifies every function against
    // them — unchanged ones are hits, the reverse-reachability closure of
    // any edit is invalidated and re-solved.
    let prior = match daemon.entry(name) {
        Some(entry) => Some(entry.cache.clone()),
        None => daemon.warm.clone(),
    };
    // Refresh before consulting: another daemon (or one-shot run)
    // sharing the store directory may have published segments since our
    // last upload; folding them in is what makes cross-process sharing
    // live rather than load-time-only. A refresh failure only costs
    // potential hits.
    if let Some(store) = &daemon.store {
        store.refresh().ok();
    }
    let engine = DisambiguationEngine::build_with_cache_and_store(
        &mut module,
        daemon.cfg.engine.clone(),
        prior.as_ref(),
        daemon.store.as_ref(),
    );
    let s = engine.stats();
    let (hits, misses, invalidated) = (s.cache_hits, s.cache_misses, s.cache_invalidated);
    let store_counts = (s.store_hits, s.store_misses, s.store_published);
    daemon.stats.cache_hits.fetch_add(hits as u64, Ordering::Relaxed);
    daemon.stats.cache_misses.fetch_add(misses as u64, Ordering::Relaxed);
    daemon.stats.cache_invalidated.fetch_add(invalidated as u64, Ordering::Relaxed);
    daemon.stats.store_hits.fetch_add(store_counts.0 as u64, Ordering::Relaxed);
    daemon.stats.store_misses.fetch_add(store_counts.1 as u64, Ordering::Relaxed);
    daemon.stats.store_published.fetch_add(store_counts.2 as u64, Ordering::Relaxed);
    let cache = engine.export_summary_cache(&module).unwrap_or_default();
    let lt = StrictInequalityAa::from_engine(engine);
    let eval_text = render_eval(&module, &lt);
    let functions = module.num_functions();
    let queries = AaEval::num_queries(&module);
    let entry = Arc::new(ModuleEntry { module, lt, eval_text, cache });
    daemon.modules_write().insert(name.to_string(), entry);
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("module", Json::Str(name.to_string())),
        ("functions", Json::Num(functions as i64)),
        ("queries", Json::Num(queries as i64)),
        ("hits", Json::Num(hits as i64)),
        ("misses", Json::Num(misses as i64)),
        ("invalidated", Json::Num(invalidated as i64)),
    ];
    // Store accounting rides along only when a store is configured, so
    // store-less daemons keep their exact historical reply shape.
    if daemon.store.is_some() {
        fields.push(("store_hits", Json::Num(store_counts.0 as i64)));
        fields.push(("store_misses", Json::Num(store_counts.1 as i64)));
        fields.push(("store_published", Json::Num(store_counts.2 as i64)));
    }
    Outcome { frames: vec![obj(fields)], kind: ReqKind::Upload, shutdown: false }
}

enum PairKind {
    NoAlias,
    Lt,
}

/// Resolves `module`/`func` plus the named values, or produces the typed
/// error to send back.
fn resolve(daemon: &Daemon, req: &Json) -> Result<(Arc<ModuleEntry>, FuncId), Outcome> {
    let Some(mname) = req.str_field("module") else {
        return Err(Outcome::error("bad-request", "missing `module` field"));
    };
    let Some(entry) = daemon.entry(mname) else {
        return Err(Outcome::error("no-such-module", format!("no module `{mname}` uploaded")));
    };
    let Some(fname) = req.str_field("func") else {
        return Err(Outcome::error("bad-request", "missing `func` field"));
    };
    let Some(fid) = entry.module.function_by_name(fname) else {
        return Err(Outcome::error("no-such-function", format!("no function `{fname}`")));
    };
    Ok((entry, fid))
}

/// Parses a value name as the IR prints it (`%v3`) and bounds-checks it
/// against the function.
fn parse_value(entry: &ModuleEntry, fid: FuncId, name: &str) -> Option<Value> {
    let idx: usize = name.strip_prefix("%v")?.parse().ok()?;
    if idx >= entry.module.function(fid).num_insts() {
        return None;
    }
    Some(Value::from_index(idx))
}

fn cmd_pair(daemon: &Daemon, req: &Json, kind: PairKind) -> Outcome {
    let (entry, fid) = match resolve(daemon, req) {
        Ok(r) => r,
        Err(e) => return e,
    };
    let (Some(n1), Some(n2)) = (req.str_field("p1"), req.str_field("p2")) else {
        return Outcome::error("bad-request", "pair queries need `p1` and `p2`");
    };
    let (Some(v1), Some(v2)) = (parse_value(&entry, fid, n1), parse_value(&entry, fid, n2)) else {
        return Outcome::error("no-such-value", format!("`{n1}`/`{n2}` not in function"));
    };
    let f = entry.module.function(fid);
    let reply = match kind {
        PairKind::NoAlias => {
            let verdict = entry.lt.engine().no_alias(f, fid, v1, v2);
            obj([("ok", Json::Bool(true)), ("no_alias", Json::Bool(verdict))])
        }
        PairKind::Lt => {
            let verdict = entry.lt.engine().less_than(fid, v1, v2);
            obj([("ok", Json::Bool(true)), ("lt", Json::Bool(verdict))])
        }
    };
    Outcome::reply(reply)
}

fn cmd_eval(daemon: &Daemon, req: &Json) -> Outcome {
    let Some(mname) = req.str_field("module") else {
        return Outcome::error("bad-request", "missing `module` field");
    };
    let Some(entry) = daemon.entry(mname) else {
        return Outcome::error("no-such-module", format!("no module `{mname}` uploaded"));
    };
    Outcome::reply(obj([("ok", Json::Bool(true)), ("text", Json::Str(entry.eval_text.clone()))]))
}

/// The streamed batch query: one frame per no-alias pair, then a final
/// `done` frame carrying the count — the client knows the stream is
/// complete without sentinel parsing.
fn cmd_pairs(daemon: &Daemon, req: &Json) -> Outcome {
    let (entry, fid) = match resolve(daemon, req) {
        Ok(r) => r,
        Err(e) => return e,
    };
    let f = entry.module.function(fid);
    let ptrs = AaEval::pointer_values(&entry.module, fid);
    let pairs = entry.lt.engine().no_alias_pairs(f, fid, &ptrs);
    let mut frames: Vec<Json> = pairs
        .iter()
        .map(|(a, b)| {
            obj([
                ("ok", Json::Bool(true)),
                ("pair", Json::Arr(vec![Json::Str(format!("{a}")), Json::Str(format!("{b}"))])),
            ])
        })
        .collect();
    frames.push(obj([("ok", Json::Bool(true)), ("done", Json::Num(pairs.len() as i64))]));
    Outcome { frames, kind: ReqKind::Query, shutdown: false }
}
