//! End-to-end differential test of the two constraint solvers.
//!
//! The paper's §6 leaves solver speed as an open problem;
//! `sraa_core::solve_fast` (SCC condensation, see DESIGN.md §"Beyond the
//! paper") answers it. Here both solvers run on the *real* constraint
//! systems of the evaluation corpus — all 16 calibrated SPEC workloads
//! plus a population of Csmith-style random programs — and must produce
//! identical less-than sets for every variable.

use sraa_core::{generate, solve, solve_fast, GenConfig};
use sraa_synth::{csmith_generate, spec_all, CsmithConfig};

fn assert_solvers_agree(source: &str, name: &str) {
    let mut module =
        sraa_minic::compile(source).unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    let (ranges, _) = sraa_essa::transform_module(&mut module);
    let sys = generate(&module, &ranges, GenConfig::default());

    let base = solve(&sys.constraints, sys.num_vars);
    let fast = solve_fast(&sys.constraints, sys.num_vars);

    for x in 0..sys.num_vars {
        assert_eq!(base.lt_set(x), fast.lt_set(x), "{name}: solvers disagree on variable {x}");
    }
    assert_eq!(base.stats.frozen_tops, fast.stats.frozen_tops, "{name}: frozen-⊤ counts differ");
    assert!(
        fast.stats.evals <= base.stats.pops,
        "{name}: fast solver did more work ({} evals vs {} pops)",
        fast.stats.evals,
        base.stats.pops
    );
}

#[test]
fn solvers_agree_on_all_spec_workloads() {
    for w in spec_all() {
        assert_solvers_agree(&w.source, &w.name);
    }
}

#[test]
fn solvers_agree_on_csmith_population() {
    for seed in 0..24 {
        let cfg = CsmithConfig {
            seed: 9_000 + seed,
            max_ptr_depth: (2 + seed % 6) as u8,
            num_stmts: 30 + (seed as usize % 4) * 15,
        };
        let w = csmith_generate(cfg);
        assert_solvers_agree(&w.source, &w.name);
    }
}

#[test]
fn solvers_agree_on_figure_1_programs() {
    let ins_sort = r#"
        void ins_sort(int* v, int N) {
            for (int i = 0; i < N - 1; i++) {
                for (int j = i + 1; j < N; j++) {
                    if (v[i] > v[j]) {
                        int tmp = v[i];
                        v[i] = v[j];
                        v[j] = tmp;
                    }
                }
            }
        }
    "#;
    let partition = r#"
        void partition(int* v, int N) {
            int i; int j; int p; int tmp;
            p = v[N / 2];
            for (i = 0, j = N - 1;; i++, j--) {
                while (v[i] < p) i++;
                while (p < v[j]) j--;
                if (i >= j) break;
                tmp = v[i];
                v[i] = v[j];
                v[j] = tmp;
            }
        }
    "#;
    assert_solvers_agree(ins_sort, "fig1a-ins_sort");
    assert_solvers_agree(partition, "fig1b-partition");
}
